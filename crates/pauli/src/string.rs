//! Multi-qubit Pauli operators in symplectic representation.

use std::fmt;
use std::str::FromStr;

use dftsp_f2::BitVec;

use crate::{Pauli, PauliKind};

/// An `n`-qubit Pauli operator, up to global phase.
///
/// Internally the operator `X^a Z^b` is stored as the pair of bit vectors
/// `(a, b)`. Multiplication is coordinate-wise XOR and two operators commute
/// iff their symplectic inner product vanishes.
///
/// # Examples
///
/// ```
/// use dftsp_pauli::{Pauli, PauliString};
///
/// let p = PauliString::from_paulis(&[Pauli::X, Pauli::I, Pauli::Z]);
/// assert_eq!(p.weight(), 2);
/// assert_eq!(p.get(0), Pauli::X);
/// assert_eq!(p.to_string(), "XIZ");
/// ```
#[derive(Clone, PartialEq, Eq, Hash)]
pub struct PauliString {
    x: BitVec,
    z: BitVec,
}

impl PauliString {
    /// Creates the identity operator on `n` qubits.
    pub fn identity(n: usize) -> Self {
        PauliString {
            x: BitVec::zeros(n),
            z: BitVec::zeros(n),
        }
    }

    /// Creates an operator from its X and Z component vectors.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn from_xz(x: BitVec, z: BitVec) -> Self {
        assert_eq!(
            x.len(),
            z.len(),
            "X and Z components must have equal length"
        );
        PauliString { x, z }
    }

    /// Creates a pure X-type operator with the given support vector.
    pub fn from_x(x: BitVec) -> Self {
        let z = BitVec::zeros(x.len());
        PauliString { x, z }
    }

    /// Creates a pure Z-type operator with the given support vector.
    pub fn from_z(z: BitVec) -> Self {
        let x = BitVec::zeros(z.len());
        PauliString { x, z }
    }

    /// Creates a pure operator of the given kind with the given support.
    pub fn from_kind(kind: PauliKind, support: BitVec) -> Self {
        match kind {
            PauliKind::X => Self::from_x(support),
            PauliKind::Z => Self::from_z(support),
        }
    }

    /// Creates an operator from a slice of single-qubit Paulis.
    pub fn from_paulis(paulis: &[Pauli]) -> Self {
        let mut s = Self::identity(paulis.len());
        for (i, &p) in paulis.iter().enumerate() {
            s.set(i, p);
        }
        s
    }

    /// Creates an operator acting as `p` on qubit `q` and trivially elsewhere.
    ///
    /// # Panics
    ///
    /// Panics if `q >= n`.
    pub fn single(n: usize, q: usize, p: Pauli) -> Self {
        let mut s = Self::identity(n);
        s.set(q, p);
        s
    }

    /// Returns the number of qubits.
    pub fn num_qubits(&self) -> usize {
        self.x.len()
    }

    /// Returns the single-qubit Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn get(&self, q: usize) -> Pauli {
        Pauli::from_xz(self.x.get(q), self.z.get(q))
    }

    /// Sets the single-qubit Pauli acting on qubit `q`.
    ///
    /// # Panics
    ///
    /// Panics if `q` is out of range.
    pub fn set(&mut self, q: usize, p: Pauli) {
        let (x, z) = p.xz();
        self.x.set(q, x);
        self.z.set(q, z);
    }

    /// Returns the X component vector (`1` where the operator is `X` or `Y`).
    pub fn x_part(&self) -> &BitVec {
        &self.x
    }

    /// Returns the Z component vector (`1` where the operator is `Z` or `Y`).
    pub fn z_part(&self) -> &BitVec {
        &self.z
    }

    /// Returns the component vector for the requested sector.
    pub fn part(&self, kind: PauliKind) -> &BitVec {
        match kind {
            PauliKind::X => &self.x,
            PauliKind::Z => &self.z,
        }
    }

    /// Returns the number of qubits on which the operator acts non-trivially.
    pub fn weight(&self) -> usize {
        (&self.x | &self.z).weight()
    }

    /// Returns `true` if the operator is the identity.
    pub fn is_identity(&self) -> bool {
        self.x.is_zero() && self.z.is_zero()
    }

    /// Returns `true` if the operator contains no Z or Y factors.
    pub fn is_x_type(&self) -> bool {
        self.z.is_zero()
    }

    /// Returns `true` if the operator contains no X or Y factors.
    pub fn is_z_type(&self) -> bool {
        self.x.is_zero()
    }

    /// Returns the qubits on which the operator acts non-trivially.
    pub fn support(&self) -> Vec<usize> {
        (&self.x | &self.z).support()
    }

    /// Multiplies two operators (discarding phase).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn mul(&self, other: &PauliString) -> PauliString {
        PauliString {
            x: &self.x ^ &other.x,
            z: &self.z ^ &other.z,
        }
    }

    /// Multiplies `other` into `self` in place (discarding phase).
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn mul_assign(&mut self, other: &PauliString) {
        self.x.xor_with(&other.x);
        self.z.xor_with(&other.z);
    }

    /// Returns `true` if the two operators commute.
    ///
    /// # Panics
    ///
    /// Panics if the qubit counts differ.
    pub fn commutes_with(&self, other: &PauliString) -> bool {
        !(self.x.dot(&other.z) ^ self.z.dot(&other.x))
    }

    /// Returns the symplectic inner product with `other` (0 if they commute,
    /// 1 otherwise), as a boolean.
    pub fn symplectic_product(&self, other: &PauliString) -> bool {
        !self.commutes_with(other)
    }

    /// Restricts the operator to its pure-X or pure-Z part as a new operator.
    pub fn restrict(&self, kind: PauliKind) -> PauliString {
        PauliString::from_kind(kind, self.part(kind).clone())
    }

    /// Returns the full symplectic vector `(x ∥ z)` of length `2n`.
    pub fn to_symplectic(&self) -> BitVec {
        self.x.concat(&self.z)
    }

    /// Reconstructs an operator from a symplectic vector `(x ∥ z)`.
    ///
    /// # Panics
    ///
    /// Panics if the vector length is odd.
    pub fn from_symplectic(v: &BitVec) -> PauliString {
        assert!(
            v.len().is_multiple_of(2),
            "symplectic vector length must be even"
        );
        let n = v.len() / 2;
        PauliString {
            x: v.slice(0..n),
            z: v.slice(n..2 * n),
        }
    }

    /// Iterates over the single-qubit Paulis.
    pub fn iter(&self) -> impl Iterator<Item = Pauli> + '_ {
        (0..self.num_qubits()).map(move |q| self.get(q))
    }
}

impl fmt::Display for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        for p in self.iter() {
            write!(f, "{p}")?;
        }
        Ok(())
    }
}

impl fmt::Debug for PauliString {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "PauliString({self})")
    }
}

/// Error returned when parsing a [`PauliString`] from text fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParsePauliError {
    offending: char,
}

impl fmt::Display for ParsePauliError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "invalid pauli character '{}'", self.offending)
    }
}

impl std::error::Error for ParsePauliError {}

impl FromStr for PauliString {
    type Err = ParsePauliError;

    /// Parses strings such as `"XIZZY"`; `_` and `.` are accepted as identity.
    fn from_str(s: &str) -> Result<Self, Self::Err> {
        let mut paulis = Vec::with_capacity(s.len());
        for c in s.chars() {
            let p = match c {
                'I' | 'i' | '_' | '.' => Pauli::I,
                'X' | 'x' => Pauli::X,
                'Y' | 'y' => Pauli::Y,
                'Z' | 'z' => Pauli::Z,
                other => return Err(ParsePauliError { offending: other }),
            };
            paulis.push(p);
        }
        Ok(PauliString::from_paulis(&paulis))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parse_and_display_roundtrip() {
        let p: PauliString = "XIZZY".parse().unwrap();
        assert_eq!(p.to_string(), "XIZZY");
        assert_eq!(p.num_qubits(), 5);
        assert_eq!(p.weight(), 4);
        let q: PauliString = "x_z.y".parse().unwrap();
        assert_eq!(q.to_string(), "XIZIY");
        assert!("XQZ".parse::<PauliString>().is_err());
    }

    #[test]
    fn identity_and_single() {
        let id = PauliString::identity(4);
        assert!(id.is_identity());
        assert_eq!(id.weight(), 0);
        let s = PauliString::single(4, 2, Pauli::Y);
        assert_eq!(s.to_string(), "IIYI");
        assert_eq!(s.support(), vec![2]);
    }

    #[test]
    fn multiplication_is_xor_of_components() {
        let a: PauliString = "XXI".parse().unwrap();
        let b: PauliString = "IZZ".parse().unwrap();
        let c = a.mul(&b);
        assert_eq!(c.to_string(), "XYZ");
        let mut d = a.clone();
        d.mul_assign(&b);
        assert_eq!(d, c);
        // Self-inverse.
        assert!(a.mul(&a).is_identity());
    }

    #[test]
    fn commutation_via_symplectic_product() {
        let x1: PauliString = "XII".parse().unwrap();
        let z1: PauliString = "ZII".parse().unwrap();
        let z2: PauliString = "IZI".parse().unwrap();
        assert!(!x1.commutes_with(&z1));
        assert!(x1.commutes_with(&z2));
        assert!(x1.symplectic_product(&z1));
        // Steane stabilizers commute.
        let sx: PauliString = "XXIIXXI".parse().unwrap();
        let sz: PauliString = "ZIZIZIZ".parse().unwrap();
        assert!(sx.commutes_with(&sz));
    }

    #[test]
    fn x_and_z_parts() {
        let p: PauliString = "XYZI".parse().unwrap();
        assert_eq!(p.x_part().support(), vec![0, 1]);
        assert_eq!(p.z_part().support(), vec![1, 2]);
        assert_eq!(p.part(PauliKind::X).support(), vec![0, 1]);
        assert!(p.restrict(PauliKind::X).is_x_type());
        assert_eq!(p.restrict(PauliKind::Z).to_string(), "IZZI");
        assert!(!p.is_x_type());
        assert!(PauliString::from_x(dftsp_f2::BitVec::from_indices(3, &[1])).is_x_type());
    }

    #[test]
    fn symplectic_roundtrip() {
        let p: PauliString = "XYZIZ".parse().unwrap();
        let v = p.to_symplectic();
        assert_eq!(v.len(), 10);
        assert_eq!(PauliString::from_symplectic(&v), p);
    }

    #[test]
    fn from_kind_constructor() {
        let v = dftsp_f2::BitVec::from_indices(4, &[0, 3]);
        let x = PauliString::from_kind(PauliKind::X, v.clone());
        assert_eq!(x.to_string(), "XIIX");
        let z = PauliString::from_kind(PauliKind::Z, v);
        assert_eq!(z.to_string(), "ZIIZ");
    }

    #[test]
    fn weight_counts_y_once() {
        let p: PauliString = "YYI".parse().unwrap();
        assert_eq!(p.weight(), 2);
    }
}
