//! Shared helpers for the benchmark harness that regenerates the paper's
//! Table I and Fig. 4.
//!
//! The binaries in `src/bin/` produce the human-readable artifacts:
//!
//! * `table1` — circuit metrics (ancilla and CNOT counts per layer and per
//!   correction branch) for every catalog code, in the layout of Table I,
//! * `fig4` — logical-error-rate curves under circuit-level depolarizing
//!   noise for every catalog code, in the layout of Fig. 4,
//! * `ftcheck` — the exhaustive single-fault check of every synthesized
//!   protocol (the paper's implicit fault-tolerance claim).
//!
//! The Criterion benches in `benches/` measure the runtime of the synthesis
//! and simulation steps themselves.

use dftsp::{
    BackendChoice, DeterministicProtocol, PrepMethod, ProtocolMetrics, SatStats, SynthesisEngine,
    SynthesisError,
};
use dftsp_code::{catalog, CssCode};
use dftsp_sat::{Encoder, Lit, Solver, SolverConfig};

/// Which verification/correction synthesis flavour to run for a Table I row.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum VerificationFlavor {
    /// Per-part optimal synthesis (the paper's "Opt" column).
    Optimal,
    /// Global optimization over all minimal verification circuits
    /// (the paper's "Global" column).
    Global,
}

impl std::fmt::Display for VerificationFlavor {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            VerificationFlavor::Optimal => write!(f, "Opt"),
            VerificationFlavor::Global => write!(f, "Global"),
        }
    }
}

/// One synthesized Table I entry.
#[derive(Debug, Clone)]
pub struct TableRow {
    /// Preparation-circuit synthesis method.
    pub prep_method: PrepMethod,
    /// Verification/correction synthesis flavour.
    pub verification_flavor: VerificationFlavor,
    /// The synthesized protocol.
    pub protocol: DeterministicProtocol,
    /// Its Table I metrics.
    pub metrics: ProtocolMetrics,
    /// Aggregate SAT statistics of the synthesis run.
    pub sat: SatStats,
    /// Wall-clock synthesis time.
    pub synthesis_time: std::time::Duration,
}

/// The engine configuration of one Table I row.
pub fn row_engine(prep_method: PrepMethod) -> SynthesisEngine {
    SynthesisEngine::builder().prep_method(prep_method).build()
}

/// Synthesizes one Table I row on the default backend.
///
/// # Errors
///
/// Forwards synthesis failures of the underlying pipeline.
pub fn synthesize_row(
    code: &CssCode,
    prep_method: PrepMethod,
    flavor: VerificationFlavor,
) -> Result<TableRow, SynthesisError> {
    synthesize_row_on(code, prep_method, flavor, BackendChoice::default())
}

/// Synthesizes one Table I row on an explicit SAT backend (e.g. the racing
/// portfolio, whose per-lane attribution then lands in [`TableRow::sat`]).
///
/// # Errors
///
/// Forwards synthesis failures of the underlying pipeline.
pub fn synthesize_row_on(
    code: &CssCode,
    prep_method: PrepMethod,
    flavor: VerificationFlavor,
    backend: BackendChoice,
) -> Result<TableRow, SynthesisError> {
    let engine = SynthesisEngine::builder()
        .prep_method(prep_method)
        .solver(backend)
        .build();
    let (protocol, sat, synthesis_time) = match flavor {
        VerificationFlavor::Optimal => {
            let report = engine.synthesize(code)?;
            let sat = report.sat_totals();
            (report.protocol, sat, report.total_time)
        }
        VerificationFlavor::Global => {
            let report = engine.globally_optimize(code)?;
            let mut sat = SatStats::default();
            for stage in &report.stages {
                sat.absorb(&stage.sat);
            }
            (report.protocol, sat, report.total_time)
        }
    };
    let metrics = ProtocolMetrics::from_protocol(&protocol);
    Ok(TableRow {
        prep_method,
        verification_flavor: flavor,
        protocol,
        metrics,
        sat,
        synthesis_time,
    })
}

/// Every code the harness evaluates: the paper's Table I catalog in table
/// order, followed by the extended workloads (the distance-5 entries and the
/// cat states). New catalog workloads are picked up here automatically by
/// every benchmark binary. The distance-5 entries synthesize at the
/// default order 1 and are expensive in full (non-`--quick`) runs —
/// minutes for QR-17, far longer for Surface-5.
pub fn evaluation_codes() -> Vec<CssCode> {
    catalog::extended()
}

/// The subset of catalog codes small enough for quick benchmarking and CI:
/// the three smallest Table I codes plus the smallest cat-state workload.
pub fn quick_codes() -> Vec<CssCode> {
    vec![
        catalog::steane(),
        catalog::shor(),
        catalog::surface3(),
        catalog::cat_state(4),
    ]
}

/// Pigeonhole principle PHP(holes+1, holes): the classic unsatisfiable
/// cardinality instance, exercising clause learning, minimization and
/// database reduction. The shared solver-only benchmark instance of the
/// criterion benches and the `satbench` binary.
pub fn pigeonhole(config: SolverConfig, holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut solver = Solver::with_config(config);
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    let mut enc = Encoder::new(&mut solver);
    for row in &vars {
        enc.solver().add_clause(row.clone());
    }
    for hole in 0..holes {
        let column: Vec<Lit> = vars.iter().map(|row| row[hole]).collect();
        enc.at_most_one(&column);
    }
    solver
}

/// Formats the bracketed per-branch lists of Table I (e.g. `[1,1,0]`).
pub fn branch_list(values: &[usize]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    let inner: Vec<String> = values.iter().map(ToString::to_string).collect();
    format!("[{}]", inner.join(","))
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn quick_codes_are_a_subset_of_the_catalog() {
        let all: Vec<String> = evaluation_codes()
            .iter()
            .map(|c| c.name().to_string())
            .collect();
        for code in quick_codes() {
            assert!(all.contains(&code.name().to_string()));
        }
    }

    #[test]
    fn branch_list_formatting() {
        assert_eq!(branch_list(&[]), "-");
        assert_eq!(branch_list(&[3]), "[3]");
        assert_eq!(branch_list(&[1, 1, 0]), "[1,1,0]");
    }

    #[test]
    fn steane_row_synthesis_smoke_test() {
        let row = synthesize_row(
            &catalog::steane(),
            PrepMethod::Heuristic,
            VerificationFlavor::Optimal,
        )
        .unwrap();
        assert_eq!(row.metrics.code_name, "Steane");
        assert_eq!(row.verification_flavor, VerificationFlavor::Optimal);
        assert_eq!(row.verification_flavor.to_string(), "Opt");
        assert!(row.sat.calls > 0, "engine reports attach SAT statistics");
        assert!(row.synthesis_time > std::time::Duration::ZERO);
    }
}
