//! Exhaustive single-fault verification of every synthesized protocol.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin ftcheck [-- --quick]
//! ```
//!
//! For every catalog code the deterministic protocol is synthesized and every
//! possible single circuit fault is injected; the binary reports the number
//! of fault locations, the number of faults checked and any violations of the
//! strict fault-tolerance criterion (Definition 1 of the paper).

use dftsp::{check_fault_tolerance, SynthesisEngine};
use dftsp_bench::{evaluation_codes, quick_codes};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let codes = if quick {
        quick_codes()
    } else {
        evaluation_codes()
    };
    let mut all_pass = true;

    // Synthesize the whole catalog batched over worker threads, then check
    // each protocol sequentially (the check itself is already exhaustive).
    let engine = SynthesisEngine::default();
    let reports = engine.synthesize_all(&codes);

    println!(
        "{:<12} {:>11} {:>10} {:>10} {:>11}",
        "Code", "[[n,k,d]]", "locations", "faults", "violations"
    );
    println!("{}", "-".repeat(60));
    for (code, synthesis) in codes.iter().zip(reports) {
        let (n, k, d) = code.parameters();
        match synthesis {
            Ok(synthesis) => {
                let report = check_fault_tolerance(&synthesis.protocol);
                println!(
                    "{:<12} {:>11} {:>10} {:>10} {:>11}",
                    code.name(),
                    format!("[[{n},{k},{d}]]"),
                    report.locations,
                    report.faults_checked,
                    report.violations.len()
                );
                if !report.is_fault_tolerant() {
                    all_pass = false;
                    for violation in report.violations.iter().take(5) {
                        println!(
                            "    violation at location {} ({:?}): x-weight {}, z-weight {}",
                            violation.location,
                            violation.segment,
                            violation.x_weight,
                            violation.z_weight
                        );
                    }
                }
            }
            Err(e) => {
                all_pass = false;
                println!(
                    "{:<12} {:>11} synthesis failed: {e}",
                    code.name(),
                    format!("[[{n},{k},{d}]]")
                );
            }
        }
    }
    if !all_pass {
        std::process::exit(1);
    }
}
