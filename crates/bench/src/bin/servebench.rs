//! Serving-layer load generator: throughput, coalescing rate and
//! eviction-correctness of [`SynthesisService`] under concurrent traffic.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin servebench \
//!     [-- --quick] [--clients N] [--rounds N] [--capacity N] [--out PATH] [--check MIN_RATE]
//!     [--portfolio] [--distributed] [--instances N]
//! ```
//!
//! The workload is catalog-shaped, like the paper's: `--clients` threads all
//! request the *same* code in lockstep rounds (a barrier per round), cycling
//! through the code set round-robin and revisiting every code once more in a
//! second pass. The first round of a code triggers exactly one SAT pipeline
//! run — the remaining clients coalesce onto it — and every revisit is served
//! from the tiered report store (a deliberately undersized memory front over
//! a JSON directory back, so the revisit pass also exercises eviction and
//! disk fault-in).
//!
//! Recorded to `BENCH_serve.json` (checked in as the serving-layer
//! trajectory): request throughput, the full provenance breakdown, the dedup
//! ("coalescing") rate = fraction of requests that did **not** run the
//! pipeline themselves, and the store's eviction counters.
//!
//! Correctness is asserted, not sampled: every response must be
//! bit-identical to a serial single-caller reference report for its code —
//! across coalescing, caching, eviction and disk fault-in ("zero-eviction-
//! correctness": evictions cause zero wrong answers). Any mismatch aborts
//! with a non-zero exit.
//!
//! * `--quick` restricts to the three smallest codes (CI budget: seconds).
//! * `--check MIN_RATE` exits non-zero when the dedup rate falls below the
//!   floor, so CI fails loudly if the request layer stops deduplicating. In
//!   `--distributed` mode the floor applies to the *cross-process* dedup
//!   rate instead.
//! * `--portfolio` submits every request on the racing portfolio backend.
//!   The correctness oracle stays the serial single-backend reference, so
//!   this mode end-to-end-checks the race's bit-identity under serving
//!   traffic; the solved responses' per-lane attribution (races, wins,
//!   cancelled work) is reported and recorded.
//! * `--distributed` runs the multi-process serving topology in one process:
//!   an in-process [`StoreServer`] on 127.0.0.1 serving the scratch JSON
//!   directory over the wire protocol, with `--instances` (default 2)
//!   independent service instances — each its own [`TieredStore`] front and
//!   [`RemoteReportStore`] client. Phase A drives the standard workload on
//!   instance 0, populating the shared server through the wire; phase B
//!   drives one catalog pass on every *other* (cold) instance, which must be
//!   served entirely from the remote store — zero SAT solves, asserted.
//!   Cross-process dedup rate, client wire counters and server counters are
//!   recorded under `"distributed"` in the JSON.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dftsp::{
    BackendChoice, JsonReportStore, PortfolioStats, RemoteCounters, RemoteReportStore, ReportStore,
    ServiceStats, StoreServer, StoreServerStats, SynthesisEngine, SynthesisRequest,
    SynthesisService, TieredStore,
};
use dftsp_bench::{evaluation_codes, quick_codes};
use dftsp_code::CssCode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value(&args, "--clients")
        .map(|s| s.parse().expect("--clients takes an integer"))
        .unwrap_or(4)
        .max(1);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|s| s.parse().expect("--rounds takes an integer"))
        .unwrap_or(2)
        .max(1);
    let capacity: usize = flag_value(&args, "--capacity")
        .map(|s| s.parse().expect("--capacity takes an integer"))
        .unwrap_or(2);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check: Option<f64> =
        flag_value(&args, "--check").map(|s| s.parse().expect("--check takes a float"));
    let portfolio = args.iter().any(|a| a == "--portfolio");
    let distributed = args.iter().any(|a| a == "--distributed");
    let instances: usize = flag_value(&args, "--instances")
        .map(|s| s.parse().expect("--instances takes an integer"))
        .unwrap_or(2)
        .max(2);

    let codes: Vec<CssCode> = if quick {
        quick_codes()
    } else {
        evaluation_codes()
            .into_iter()
            .filter(|code| code.parameters().2 == 3)
            .collect()
    };

    // Serial single-caller reference reports: the correctness oracle every
    // served response is checked against, bit for bit.
    let reference_engine = SynthesisEngine::builder().threads(1).build();
    let references: Vec<String> = codes
        .iter()
        .map(|code| {
            protocol_rendering(
                &reference_engine
                    .synthesize(code)
                    .unwrap_or_else(|e| panic!("{}: {e}", code.name()))
                    .protocol,
            )
        })
        .collect();

    // An undersized memory front over a scratch JSON directory: revisit
    // rounds hit evictions and disk fault-in on purpose. In distributed mode
    // the directory sits behind the store server instead of being mounted
    // directly.
    let dir = std::env::temp_dir().join(format!("dftsp-servebench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let disk = Arc::new(JsonReportStore::new(&dir).expect("scratch store directory"));

    let server = distributed.then(|| {
        StoreServer::bind("127.0.0.1:0", disk.clone() as Arc<_>).expect("in-process store server")
    });

    // A service instance: its own memory front tier over either the local
    // disk store (classic mode) or a fresh remote client (distributed mode).
    let make_instance = |tag: usize,
                         server: Option<&StoreServer>|
     -> (
        SynthesisService,
        Arc<TieredStore>,
        Option<Arc<RemoteReportStore>>,
    ) {
        let (back, remote): (Arc<dyn ReportStore>, _) = match server {
            Some(server) => {
                let remote = Arc::new(
                    RemoteReportStore::connect(server.local_addr())
                        .unwrap_or_else(|e| panic!("instance {tag}: remote client: {e}")),
                );
                (remote.clone(), Some(remote))
            }
            None => (disk.clone(), None),
        };
        let store = Arc::new(TieredStore::new(capacity).with_back(back));
        let service = SynthesisService::builder()
            .report_store(store.clone() as Arc<_>)
            .concurrency(clients)
            .build();
        (service, store, remote)
    };

    // Phase A: the standard barrier workload on instance 0. In classic mode
    // this is the whole benchmark.
    let (service, store, remote) = make_instance(0, server.as_ref());
    let drive_a = drive(&service, &codes, &references, clients, rounds, portfolio);
    let stats = service.stats();
    let total = stats.submitted;
    let throughput = total as f64 / drive_a.elapsed.as_secs_f64();
    let dedup = stats.dedup_rate();
    println!(
        "{} requests ({} clients × {} rounds × {} codes) in {:.2?}: {:.1} req/s",
        total,
        clients,
        rounds,
        codes.len(),
        drive_a.elapsed,
        throughput
    );
    println!("  {stats}");
    println!(
        "  store: {} front hits, {} back hits, {} evictions, {} corrupt",
        store.front_hits(),
        store.back_hits(),
        store.evictions(),
        disk.corrupt_entries()
    );
    if portfolio {
        println!("  portfolio: {}", drive_a.portfolio);
    }

    // Phase B (distributed only): every other instance is cold — fresh front
    // tier, fresh remote connection — and must serve its catalog pass
    // entirely from the shared store server, with zero SAT solves.
    let mut mismatches = drive_a.mismatches;
    let mut distributed_summary = None;
    if let Some(mut server) = server {
        let mut phase_b = ServiceStats::default();
        let mut phase_b_elapsed = Duration::ZERO;
        let mut wire = remote
            .as_deref()
            .map(RemoteReportStore::counters)
            .unwrap_or_default();
        for tag in 1..instances {
            let (cold_service, _store, cold_remote) = make_instance(tag, Some(&server));
            let cold_drive = drive(&cold_service, &codes, &references, clients, 1, portfolio);
            mismatches += cold_drive.mismatches;
            phase_b_elapsed += cold_drive.elapsed;
            absorb_stats(&mut phase_b, &cold_service.stats());
            if let Some(cold_remote) = &cold_remote {
                absorb_counters(&mut wire, &cold_remote.counters());
            }
        }
        let cross_process_dedup = if phase_b.submitted == 0 {
            0.0
        } else {
            (phase_b.cached + phase_b.coalesced) as f64 / phase_b.submitted as f64
        };
        let server_stats = server.stats();
        println!(
            "distributed: {} cold instances, {} requests in {:.2?}, cross-process dedup {:.3}",
            instances - 1,
            phase_b.submitted,
            phase_b_elapsed,
            cross_process_dedup
        );
        println!("  phase B: {phase_b}");
        println!("  server: {server_stats}");
        println!(
            "  wire: {} frames out, {} frames in, {} bytes out, {} bytes in, {} connects, {} retries, {} degraded",
            wire.frames_sent,
            wire.frames_received,
            wire.bytes_sent,
            wire.bytes_received,
            wire.connects,
            wire.retries,
            wire.degraded
        );
        server.shutdown();
        distributed_summary = Some(DistributedSummary {
            instances,
            cross_process_dedup,
            phase_b,
            phase_b_elapsed,
            wire,
            server: server_stats,
        });
    }
    std::fs::remove_dir_all(&dir).ok();

    let json = render_json(
        quick,
        clients,
        rounds,
        capacity,
        &codes,
        drive_a.elapsed.as_micros(),
        throughput,
        &stats,
        &store,
        portfolio.then_some(&drive_a.portfolio),
        distributed_summary.as_ref(),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses differed from the serial reference");
        std::process::exit(1);
    }
    let grand_total = total
        + distributed_summary
            .as_ref()
            .map_or(0, |d| d.phase_b.submitted);
    println!("eviction-correctness passed: 0 mismatches across {grand_total} responses");
    if let Some(d) = &distributed_summary {
        if d.phase_b.solved > 0 {
            eprintln!(
                "FAIL: cold instances ran {} SAT solves; the remote store should have served them",
                d.phase_b.solved
            );
            std::process::exit(1);
        }
        println!(
            "cross-process dedup passed: {} cold-instance requests, 0 SAT solves",
            d.phase_b.submitted
        );
    }
    if let Some(min_rate) = check {
        // In distributed mode the floor gates the cross-process dedup rate —
        // the in-process rate is already gated by the classic CI step.
        let (gated, label) = match &distributed_summary {
            Some(d) => (d.cross_process_dedup, "cross-process dedup"),
            None => (dedup, "dedup (coalescing + cache)"),
        };
        if gated < min_rate {
            eprintln!("FAIL: {label} rate {gated:.3} is below the required {min_rate:.3}");
            std::process::exit(1);
        }
        println!("check passed: {label} rate {gated:.3} >= {min_rate:.3}");
    }
}

/// Result of one barrier-lockstep drive against one service instance.
struct DriveResult {
    mismatches: usize,
    portfolio: PortfolioStats,
    elapsed: Duration,
}

/// Drives `clients` lockstep threads through `rounds` passes over `codes`,
/// checking every response against the serial reference renderings.
fn drive(
    service: &SynthesisService,
    codes: &[CssCode],
    references: &[String],
    clients: usize,
    rounds: usize,
    portfolio: bool,
) -> DriveResult {
    let schedule: Vec<usize> = (0..rounds).flat_map(|_| 0..codes.len()).collect();
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let (mismatches, portfolio_totals) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut mismatches = 0usize;
                    // Per-lane attribution of the pipeline runs this client
                    // triggered (solved responses only — coalesced and cached
                    // responses repeat another run's statistics).
                    let mut attribution = PortfolioStats::default();
                    for &code_index in schedule {
                        barrier.wait();
                        let mut request = SynthesisRequest::new(codes[code_index].clone());
                        if portfolio {
                            request = request.solver(BackendChoice::portfolio());
                        }
                        let response = service
                            .submit(request)
                            .unwrap_or_else(|e| panic!("{}: {e}", codes[code_index].name()));
                        if protocol_rendering(&response.report.protocol) != references[code_index] {
                            eprintln!(
                                "MISMATCH: {} served a wrong report ({})",
                                codes[code_index].name(),
                                response.provenance
                            );
                            mismatches += 1;
                        }
                        if response.provenance == dftsp::Provenance::Solved {
                            attribution.absorb(&response.report.sat_totals().portfolio);
                        }
                    }
                    (mismatches, attribution)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client")).fold(
            (0usize, PortfolioStats::default()),
            |(mismatches, mut totals), (m, attribution)| {
                totals.absorb(&attribution);
                (mismatches + m, totals)
            },
        )
    });
    DriveResult {
        mismatches,
        portfolio: portfolio_totals,
        elapsed: start.elapsed(),
    }
}

/// The distributed-mode record appended to the JSON output.
struct DistributedSummary {
    instances: usize,
    cross_process_dedup: f64,
    phase_b: ServiceStats,
    phase_b_elapsed: Duration,
    wire: RemoteCounters,
    server: StoreServerStats,
}

fn absorb_stats(into: &mut ServiceStats, from: &ServiceStats) {
    into.submitted += from.submitted;
    into.solved += from.solved;
    into.coalesced += from.coalesced;
    into.cached += from.cached;
    into.cancelled += from.cancelled;
    into.failed += from.failed;
}

fn absorb_counters(into: &mut RemoteCounters, from: &RemoteCounters) {
    into.frames_sent += from.frames_sent;
    into.frames_received += from.frames_received;
    into.bytes_sent += from.bytes_sent;
    into.bytes_received += from.bytes_received;
    into.connects += from.connects;
    into.retries += from.retries;
    into.degraded += from.degraded;
    into.corrupt_payloads += from.corrupt_payloads;
}

/// The deterministic content of a protocol (prep circuit + layers) — what
/// every served response must reproduce bit for bit.
fn protocol_rendering(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The full [`ServiceStats`] as a JSON object, dedup rate included —
/// unrounded, so the serving trajectory keeps full precision.
fn stats_json(stats: &ServiceStats) -> String {
    format!(
        "{{\"submitted\": {}, \"solved\": {}, \"coalesced\": {}, \"cached\": {}, \"cancelled\": {}, \"failed\": {}, \"dedup_rate\": {}}}",
        stats.submitted,
        stats.solved,
        stats.coalesced,
        stats.cached,
        stats.cancelled,
        stats.failed,
        stats.dedup_rate()
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    clients: usize,
    rounds: usize,
    capacity: usize,
    codes: &[CssCode],
    elapsed_us: u128,
    throughput: f64,
    stats: &ServiceStats,
    store: &TieredStore,
    portfolio: Option<&PortfolioStats>,
    distributed: Option<&DistributedSummary>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"servebench\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "d3-catalog" }
    ));
    out.push_str(&format!(
        "  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"front_capacity\": {capacity},\n"
    ));
    out.push_str(&format!(
        "  \"codes\": [{}],\n",
        codes
            .iter()
            .map(|c| format!("\"{}\"", c.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"elapsed_us\": {elapsed_us},\n"));
    out.push_str(&format!("  \"requests_per_second\": {throughput},\n"));
    out.push_str(&format!("  \"requests\": {},\n", stats_json(stats)));
    out.push_str(&format!("  \"dedup_rate\": {},\n", stats.dedup_rate()));
    out.push_str(&format!(
        "  \"store\": {{\"front_hits\": {}, \"back_hits\": {}, \"evictions\": {}}}",
        store.front_hits(),
        store.back_hits(),
        store.evictions()
    ));
    if let Some(p) = portfolio {
        let lanes: Vec<String> = dftsp::PortfolioLane::ALL
            .iter()
            .map(|&lane| {
                let l = p.lane(lane);
                format!(
                    "{{\"lane\": \"{}\", \"wins\": {}, \"losses\": {}, \"cancelled_conflicts\": {}, \"time_us\": {}}}",
                    lane.name(),
                    l.wins,
                    l.losses,
                    l.cancelled_conflicts,
                    l.time_us
                )
            })
            .collect();
        out.push_str(&format!(
            ",\n  \"portfolio\": {{\"races\": {}, \"solo\": {}, \"lanes\": [{}]}}",
            p.races,
            p.solo,
            lanes.join(", ")
        ));
    }
    if let Some(d) = distributed {
        let phase_b_elapsed_us = d.phase_b_elapsed.as_micros();
        let phase_b_rps = if d.phase_b_elapsed.is_zero() {
            0.0
        } else {
            d.phase_b.submitted as f64 / d.phase_b_elapsed.as_secs_f64()
        };
        out.push_str(&format!(
            ",\n  \"distributed\": {{\n    \"instances\": {},\n    \"cross_process_dedup_rate\": {},\n    \"phase_b\": {{\"elapsed_us\": {}, \"requests_per_second\": {}, \"requests\": {}}},\n    \"wire\": {{\"frames_sent\": {}, \"frames_received\": {}, \"bytes_sent\": {}, \"bytes_received\": {}, \"connects\": {}, \"retries\": {}, \"degraded\": {}, \"corrupt_payloads\": {}}},\n    \"server\": {{\"gets\": {}, \"puts\": {}, \"hits\": {}, \"misses\": {}, \"connections\": {}, \"rejected\": {}, \"bad_frames\": {}}}\n  }}",
            d.instances,
            d.cross_process_dedup,
            phase_b_elapsed_us,
            phase_b_rps,
            stats_json(&d.phase_b),
            d.wire.frames_sent,
            d.wire.frames_received,
            d.wire.bytes_sent,
            d.wire.bytes_received,
            d.wire.connects,
            d.wire.retries,
            d.wire.degraded,
            d.wire.corrupt_payloads,
            d.server.gets,
            d.server.puts,
            d.server.hits,
            d.server.misses,
            d.server.connections,
            d.server.rejected,
            d.server.bad_frames,
        ));
    }
    out.push_str("\n}\n");
    out
}
