//! Serving-layer load generator: throughput, coalescing rate and
//! eviction-correctness of [`SynthesisService`] under concurrent traffic.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin servebench \
//!     [-- --quick] [--clients N] [--rounds N] [--capacity N] [--out PATH] [--check MIN_RATE]
//!     [--portfolio] [--distributed] [--instances N]
//! ```
//!
//! The workload is catalog-shaped, like the paper's: `--clients` threads all
//! request the *same* code in lockstep rounds (a barrier per round), cycling
//! through the code set round-robin and revisiting every code once more in a
//! second pass. The first round of a code triggers exactly one SAT pipeline
//! run — the remaining clients coalesce onto it — and every revisit is served
//! from the tiered report store (a deliberately undersized memory front over
//! a JSON directory back, so the revisit pass also exercises eviction and
//! disk fault-in).
//!
//! Recorded to `BENCH_serve.json` (checked in as the serving-layer
//! trajectory): request throughput, the full provenance breakdown, the dedup
//! ("coalescing") rate = fraction of requests that did **not** run the
//! pipeline themselves, and the store's eviction counters.
//!
//! Correctness is asserted, not sampled: every response must be
//! bit-identical to a serial single-caller reference report for its code —
//! across coalescing, caching, eviction and disk fault-in ("zero-eviction-
//! correctness": evictions cause zero wrong answers). Any mismatch aborts
//! with a non-zero exit.
//!
//! * `--quick` restricts to the smallest codes (CI budget: seconds).
//! * `--check MIN_RATE` exits non-zero when the dedup rate falls below the
//!   floor, so CI fails loudly if the request layer stops deduplicating. In
//!   `--distributed` mode the floor applies to the *cross-process* dedup
//!   rate instead.
//! * `--portfolio` submits every request on the racing portfolio backend.
//!   The correctness oracle stays the serial single-backend reference, so
//!   this mode end-to-end-checks the race's bit-identity under serving
//!   traffic; the solved responses' per-lane attribution (races, wins,
//!   cancelled work) is reported and recorded.
//! * `--distributed` runs the multi-process serving topology in one process:
//!   an in-process [`StoreServer`] on 127.0.0.1 serving the scratch JSON
//!   directory over the wire protocol, with `--instances` (default 2)
//!   independent service instances — each its own [`TieredStore`] front and
//!   [`RemoteReportStore`] client. Phase A drives the standard workload on
//!   instance 0, populating the shared server through the wire; phase B
//!   drives one catalog pass on every *other* (cold) instance, which must be
//!   served entirely from the remote store — zero SAT solves, asserted.
//!   Cross-process dedup rate, client wire counters and server counters are
//!   recorded under `"distributed"` in the JSON.
//! * `--chaos` runs the full fault-tolerance topology: `--shards` (default 2)
//!   shard groups of `--replicas` (default 2) store servers each, every
//!   server's wire under a seeded [`FaultPlan`] (`--seed`, `--fault-period`),
//!   composed client-side as a [`ShardedStore`] over [`ReplicatedStore`]
//!   groups. The drive runs three phases: populate under faults, kill
//!   replica 0 of every shard mid-run, then restart it *empty* at the same
//!   address. The run exits non-zero unless every response stayed
//!   bit-identical to the no-store reference, zero syntheses failed, and the
//!   breaker-trip and read-repair counters are both nonzero (the machinery
//!   demonstrably fired). Counters are recorded under `"chaos"` and `"wire"`
//!   in the JSON.

use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

use dftsp::{
    BackendChoice, CheckedStore, FaultPlan, JsonReportStore, PortfolioStats, RemoteCounters,
    RemoteReportStore, RemoteStoreConfig, ReplicaConfig, ReplicaCounters, ReplicatedStore,
    ReportStore, ServiceStats, ShardedStore, StoreServer, StoreServerStats, SynthesisEngine,
    SynthesisRequest, SynthesisService, TieredStore,
};
use dftsp_bench::{evaluation_codes, quick_codes};
use dftsp_code::CssCode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value(&args, "--clients")
        .map(|s| s.parse().expect("--clients takes an integer"))
        .unwrap_or(4)
        .max(1);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|s| s.parse().expect("--rounds takes an integer"))
        .unwrap_or(2)
        .max(1);
    let capacity: usize = flag_value(&args, "--capacity")
        .map(|s| s.parse().expect("--capacity takes an integer"))
        .unwrap_or(2);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check: Option<f64> =
        flag_value(&args, "--check").map(|s| s.parse().expect("--check takes a float"));
    let portfolio = args.iter().any(|a| a == "--portfolio");
    let distributed = args.iter().any(|a| a == "--distributed");
    let instances: usize = flag_value(&args, "--instances")
        .map(|s| s.parse().expect("--instances takes an integer"))
        .unwrap_or(2)
        .max(2);
    let chaos = args.iter().any(|a| a == "--chaos");
    let shards: usize = flag_value(&args, "--shards")
        .map(|s| s.parse().expect("--shards takes an integer"))
        .unwrap_or(2)
        .max(1);
    let replicas: usize = flag_value(&args, "--replicas")
        .map(|s| s.parse().expect("--replicas takes an integer"))
        .unwrap_or(2)
        .max(2);
    let fault_period: u64 = flag_value(&args, "--fault-period")
        .map(|s| s.parse().expect("--fault-period takes an integer"))
        .unwrap_or(11)
        .max(1);
    let seed: u64 = flag_value(&args, "--seed")
        .map(|s| s.parse().expect("--seed takes an integer"))
        .unwrap_or(0xC0FFEE);

    let codes: Vec<CssCode> = if quick {
        quick_codes()
    } else {
        evaluation_codes()
            .into_iter()
            .filter(|code| code.parameters().2 == 3)
            .collect()
    };

    // Serial single-caller reference reports: the correctness oracle every
    // served response is checked against, bit for bit.
    let reference_engine = SynthesisEngine::builder().threads(1).build();
    let references: Vec<String> = codes
        .iter()
        .map(|code| {
            protocol_rendering(
                &reference_engine
                    .synthesize(code)
                    .unwrap_or_else(|e| panic!("{}: {e}", code.name()))
                    .protocol,
            )
        })
        .collect();

    if chaos {
        run_chaos(ChaosSetup {
            quick,
            clients,
            rounds,
            codes: &codes,
            references: &references,
            out: &out,
            shards,
            replicas,
            fault_period,
            seed,
        });
        return;
    }

    // An undersized memory front over a scratch JSON directory: revisit
    // rounds hit evictions and disk fault-in on purpose. In distributed mode
    // the directory sits behind the store server instead of being mounted
    // directly.
    let dir = std::env::temp_dir().join(format!("dftsp-servebench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let disk = Arc::new(JsonReportStore::new(&dir).expect("scratch store directory"));

    let server = distributed.then(|| {
        StoreServer::bind("127.0.0.1:0", disk.clone() as Arc<_>).expect("in-process store server")
    });

    // A service instance: its own memory front tier over either the local
    // disk store (classic mode) or a fresh remote client (distributed mode).
    let make_instance = |tag: usize,
                         server: Option<&StoreServer>|
     -> (
        SynthesisService,
        Arc<TieredStore>,
        Option<Arc<RemoteReportStore>>,
    ) {
        let (back, remote): (Arc<dyn ReportStore>, _) = match server {
            Some(server) => {
                let remote = Arc::new(
                    RemoteReportStore::connect(server.local_addr())
                        .unwrap_or_else(|e| panic!("instance {tag}: remote client: {e}")),
                );
                (remote.clone(), Some(remote))
            }
            None => (disk.clone(), None),
        };
        let store = Arc::new(TieredStore::new(capacity).with_back(back));
        let service = SynthesisService::builder()
            .report_store(store.clone() as Arc<_>)
            .concurrency(clients)
            .build();
        (service, store, remote)
    };

    // Phase A: the standard barrier workload on instance 0. In classic mode
    // this is the whole benchmark.
    let (service, store, remote) = make_instance(0, server.as_ref());
    let drive_a = drive(&service, &codes, &references, clients, rounds, portfolio);
    let stats = service.stats();
    let total = stats.submitted;
    let throughput = total as f64 / drive_a.elapsed.as_secs_f64();
    let dedup = stats.dedup_rate();
    println!(
        "{} requests ({} clients × {} rounds × {} codes) in {:.2?}: {:.1} req/s",
        total,
        clients,
        rounds,
        codes.len(),
        drive_a.elapsed,
        throughput
    );
    println!("  {stats}");
    println!(
        "  store: {} front hits, {} back hits, {} evictions, {} corrupt",
        store.front_hits(),
        store.back_hits(),
        store.evictions(),
        disk.corrupt_entries()
    );
    if portfolio {
        println!("  portfolio: {}", drive_a.portfolio);
    }

    // Phase B (distributed only): every other instance is cold — fresh front
    // tier, fresh remote connection — and must serve its catalog pass
    // entirely from the shared store server, with zero SAT solves.
    let mut mismatches = drive_a.mismatches;
    let mut distributed_summary = None;
    if let Some(mut server) = server {
        let mut phase_b = ServiceStats::default();
        let mut phase_b_elapsed = Duration::ZERO;
        let mut wire = remote
            .as_deref()
            .map(RemoteReportStore::counters)
            .unwrap_or_default();
        for tag in 1..instances {
            let (cold_service, _store, cold_remote) = make_instance(tag, Some(&server));
            let cold_drive = drive(&cold_service, &codes, &references, clients, 1, portfolio);
            mismatches += cold_drive.mismatches;
            phase_b_elapsed += cold_drive.elapsed;
            absorb_stats(&mut phase_b, &cold_service.stats());
            if let Some(cold_remote) = &cold_remote {
                absorb_counters(&mut wire, &cold_remote.counters());
            }
        }
        let cross_process_dedup = if phase_b.submitted == 0 {
            0.0
        } else {
            (phase_b.cached + phase_b.coalesced) as f64 / phase_b.submitted as f64
        };
        let server_stats = server.stats();
        println!(
            "distributed: {} cold instances, {} requests in {:.2?}, cross-process dedup {:.3}",
            instances - 1,
            phase_b.submitted,
            phase_b_elapsed,
            cross_process_dedup
        );
        println!("  phase B: {phase_b}");
        println!("  server: {server_stats}");
        println!(
            "  wire: {} frames out, {} frames in, {} bytes out, {} bytes in, {} connects, {} retries, {} degraded",
            wire.frames_sent,
            wire.frames_received,
            wire.bytes_sent,
            wire.bytes_received,
            wire.connects,
            wire.retries,
            wire.degraded
        );
        server.shutdown();
        distributed_summary = Some(DistributedSummary {
            instances,
            cross_process_dedup,
            phase_b,
            phase_b_elapsed,
            wire,
            server: server_stats,
        });
    }
    std::fs::remove_dir_all(&dir).ok();

    let json = render_json(
        quick,
        clients,
        rounds,
        capacity,
        &codes,
        drive_a.elapsed.as_micros(),
        throughput,
        &stats,
        &store,
        portfolio.then_some(&drive_a.portfolio),
        distributed_summary.as_ref(),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses differed from the serial reference");
        std::process::exit(1);
    }
    let grand_total = total
        + distributed_summary
            .as_ref()
            .map_or(0, |d| d.phase_b.submitted);
    println!("eviction-correctness passed: 0 mismatches across {grand_total} responses");
    if let Some(d) = &distributed_summary {
        if d.phase_b.solved > 0 {
            eprintln!(
                "FAIL: cold instances ran {} SAT solves; the remote store should have served them",
                d.phase_b.solved
            );
            std::process::exit(1);
        }
        println!(
            "cross-process dedup passed: {} cold-instance requests, 0 SAT solves",
            d.phase_b.submitted
        );
    }
    if let Some(min_rate) = check {
        // In distributed mode the floor gates the cross-process dedup rate —
        // the in-process rate is already gated by the classic CI step.
        let (gated, label) = match &distributed_summary {
            Some(d) => (d.cross_process_dedup, "cross-process dedup"),
            None => (dedup, "dedup (coalescing + cache)"),
        };
        if gated < min_rate {
            eprintln!("FAIL: {label} rate {gated:.3} is below the required {min_rate:.3}");
            std::process::exit(1);
        }
        println!("check passed: {label} rate {gated:.3} >= {min_rate:.3}");
    }
}

/// Result of one barrier-lockstep drive against one service instance.
struct DriveResult {
    mismatches: usize,
    portfolio: PortfolioStats,
    elapsed: Duration,
}

/// Drives `clients` lockstep threads through `rounds` passes over `codes`,
/// checking every response against the serial reference renderings.
fn drive(
    service: &SynthesisService,
    codes: &[CssCode],
    references: &[String],
    clients: usize,
    rounds: usize,
    portfolio: bool,
) -> DriveResult {
    let schedule: Vec<usize> = (0..rounds).flat_map(|_| 0..codes.len()).collect();
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let (mismatches, portfolio_totals) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut mismatches = 0usize;
                    // Per-lane attribution of the pipeline runs this client
                    // triggered (solved responses only — coalesced and cached
                    // responses repeat another run's statistics).
                    let mut attribution = PortfolioStats::default();
                    for &code_index in schedule {
                        barrier.wait();
                        let mut request = SynthesisRequest::new(codes[code_index].clone());
                        if portfolio {
                            request = request.solver(BackendChoice::portfolio());
                        }
                        let response = service
                            .submit(request)
                            .unwrap_or_else(|e| panic!("{}: {e}", codes[code_index].name()));
                        if protocol_rendering(&response.report.protocol) != references[code_index] {
                            eprintln!(
                                "MISMATCH: {} served a wrong report ({})",
                                codes[code_index].name(),
                                response.provenance
                            );
                            mismatches += 1;
                        }
                        if response.provenance == dftsp::Provenance::Solved {
                            attribution.absorb(&response.report.sat_totals().portfolio);
                        }
                    }
                    (mismatches, attribution)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client")).fold(
            (0usize, PortfolioStats::default()),
            |(mismatches, mut totals), (m, attribution)| {
                totals.absorb(&attribution);
                (mismatches + m, totals)
            },
        )
    });
    DriveResult {
        mismatches,
        portfolio: portfolio_totals,
        elapsed: start.elapsed(),
    }
}

/// The distributed-mode record appended to the JSON output.
struct DistributedSummary {
    instances: usize,
    cross_process_dedup: f64,
    phase_b: ServiceStats,
    phase_b_elapsed: Duration,
    wire: RemoteCounters,
    server: StoreServerStats,
}

fn absorb_stats(into: &mut ServiceStats, from: &ServiceStats) {
    into.submitted += from.submitted;
    into.solved += from.solved;
    into.coalesced += from.coalesced;
    into.cached += from.cached;
    into.cancelled += from.cancelled;
    into.failed += from.failed;
    into.store_hits += from.store_hits;
    into.store_misses += from.store_misses;
}

fn absorb_counters(into: &mut RemoteCounters, from: &RemoteCounters) {
    into.frames_sent += from.frames_sent;
    into.frames_received += from.frames_received;
    into.bytes_sent += from.bytes_sent;
    into.bytes_received += from.bytes_received;
    into.connects += from.connects;
    into.retries += from.retries;
    into.degraded += from.degraded;
    into.corrupt_payloads += from.corrupt_payloads;
}

/// The deterministic content of a protocol (prep circuit + layers) — what
/// every served response must reproduce bit for bit.
fn protocol_rendering(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// The full [`ServiceStats`] as a JSON object, dedup rate included —
/// unrounded, so the serving trajectory keeps full precision.
fn stats_json(stats: &ServiceStats) -> String {
    format!(
        "{{\"submitted\": {}, \"solved\": {}, \"coalesced\": {}, \"cached\": {}, \"cancelled\": {}, \"failed\": {}, \"store_hits\": {}, \"store_misses\": {}, \"dedup_rate\": {}}}",
        stats.submitted,
        stats.solved,
        stats.coalesced,
        stats.cached,
        stats.cancelled,
        stats.failed,
        stats.store_hits,
        stats.store_misses,
        stats.dedup_rate()
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    clients: usize,
    rounds: usize,
    capacity: usize,
    codes: &[CssCode],
    elapsed_us: u128,
    throughput: f64,
    stats: &ServiceStats,
    store: &TieredStore,
    portfolio: Option<&PortfolioStats>,
    distributed: Option<&DistributedSummary>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"servebench\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "d3-catalog" }
    ));
    out.push_str(&format!(
        "  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"front_capacity\": {capacity},\n"
    ));
    out.push_str(&format!(
        "  \"codes\": [{}],\n",
        codes
            .iter()
            .map(|c| format!("\"{}\"", c.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"elapsed_us\": {elapsed_us},\n"));
    out.push_str(&format!("  \"requests_per_second\": {throughput},\n"));
    out.push_str(&format!("  \"requests\": {},\n", stats_json(stats)));
    out.push_str(&format!("  \"dedup_rate\": {},\n", stats.dedup_rate()));
    out.push_str(&format!(
        "  \"store\": {{\"front_hits\": {}, \"back_hits\": {}, \"evictions\": {}}}",
        store.front_hits(),
        store.back_hits(),
        store.evictions()
    ));
    if let Some(p) = portfolio {
        let lanes: Vec<String> = dftsp::PortfolioLane::ALL
            .iter()
            .map(|&lane| {
                let l = p.lane(lane);
                format!(
                    "{{\"lane\": \"{}\", \"wins\": {}, \"losses\": {}, \"cancelled_conflicts\": {}, \"time_us\": {}}}",
                    lane.name(),
                    l.wins,
                    l.losses,
                    l.cancelled_conflicts,
                    l.time_us
                )
            })
            .collect();
        out.push_str(&format!(
            ",\n  \"portfolio\": {{\"races\": {}, \"solo\": {}, \"lanes\": [{}]}}",
            p.races,
            p.solo,
            lanes.join(", ")
        ));
    }
    if let Some(d) = distributed {
        let phase_b_elapsed_us = d.phase_b_elapsed.as_micros();
        let phase_b_rps = if d.phase_b_elapsed.is_zero() {
            0.0
        } else {
            d.phase_b.submitted as f64 / d.phase_b_elapsed.as_secs_f64()
        };
        out.push_str(&format!(
            ",\n  \"distributed\": {{\n    \"instances\": {},\n    \"cross_process_dedup_rate\": {},\n    \"phase_b\": {{\"elapsed_us\": {}, \"requests_per_second\": {}, \"requests\": {}}},\n    \"wire\": {{\"frames_sent\": {}, \"frames_received\": {}, \"bytes_sent\": {}, \"bytes_received\": {}, \"connects\": {}, \"retries\": {}, \"degraded\": {}, \"corrupt_payloads\": {}}},\n    \"server\": {{\"gets\": {}, \"puts\": {}, \"hits\": {}, \"misses\": {}, \"connections\": {}, \"rejected\": {}, \"bad_frames\": {}}}\n  }}",
            d.instances,
            d.cross_process_dedup,
            phase_b_elapsed_us,
            phase_b_rps,
            stats_json(&d.phase_b),
            d.wire.frames_sent,
            d.wire.frames_received,
            d.wire.bytes_sent,
            d.wire.bytes_received,
            d.wire.connects,
            d.wire.retries,
            d.wire.degraded,
            d.wire.corrupt_payloads,
            d.server.gets,
            d.server.puts,
            d.server.hits,
            d.server.misses,
            d.server.connections,
            d.server.rejected,
            d.server.bad_frames,
        ));
    }
    out.push_str("\n}\n");
    out
}

/// Inputs of the chaos run (`--chaos`).
struct ChaosSetup<'a> {
    quick: bool,
    clients: usize,
    rounds: usize,
    codes: &'a [CssCode],
    references: &'a [String],
    out: &'a str,
    shards: usize,
    replicas: usize,
    fault_period: u64,
    seed: u64,
}

/// Binds one chaos store server on a fresh scratch directory. `generation`
/// distinguishes a restarted replica's directory from its killed
/// predecessor's, so a restart always rejoins *empty* (the read-repair
/// path, not the page cache, must reconverge it).
fn bind_chaos_server(
    base: &std::path::Path,
    addr: impl std::net::ToSocketAddrs,
    shard: usize,
    replica: usize,
    generation: u32,
    plan: Arc<FaultPlan>,
) -> StoreServer {
    let dir = base.join(format!("shard{shard}-replica{replica}-gen{generation}"));
    std::fs::remove_dir_all(&dir).ok();
    let kv = Arc::new(JsonReportStore::new(&dir).expect("chaos store directory"));
    StoreServer::bind_faulty(addr, kv, 64, plan)
        .unwrap_or_else(|e| panic!("chaos server shard {shard} replica {replica}: {e}"))
}

fn absorb_replica(into: &mut ReplicaCounters, from: &ReplicaCounters) {
    into.replica_failures += from.replica_failures;
    into.breaker_trips += from.breaker_trips;
    into.breaker_probes += from.breaker_probes;
    into.skipped_open += from.skipped_open;
    into.failover_reads += from.failover_reads;
    into.read_repairs += from.read_repairs;
    into.repair_failures += from.repair_failures;
    into.fanout_writes += from.fanout_writes;
}

/// The chaos mode: the full sharded-replicated topology (every server's wire
/// under a seeded `FaultPlan`), driven through three phases — populate under
/// faults, kill replica 0 of every shard mid-run, restart it *empty* at the
/// same address — asserting zero failed syntheses, responses bit-identical
/// to the no-store references throughout, and nonzero breaker-trip and
/// read-repair counters at the end.
fn run_chaos(setup: ChaosSetup) {
    let ChaosSetup {
        quick,
        clients,
        rounds,
        codes,
        references,
        out,
        shards,
        replicas,
        fault_period,
        seed,
    } = setup;
    let base = std::env::temp_dir().join(format!("dftsp-chaosbench-{}", std::process::id()));
    std::fs::remove_dir_all(&base).ok();

    // Server fleet: shards × replicas, each with its own directory and its
    // own seeded wire-fault schedule.
    let mut servers: Vec<Vec<Option<StoreServer>>> = Vec::new();
    let mut addrs: Vec<Vec<std::net::SocketAddr>> = Vec::new();
    let mut plans: Vec<Arc<FaultPlan>> = Vec::new();
    for s in 0..shards {
        let mut shard_servers = Vec::new();
        let mut shard_addrs = Vec::new();
        for r in 0..replicas {
            let member = (s * replicas + r) as u64;
            let plan = Arc::new(FaultPlan::seeded(
                seed ^ member.wrapping_mul(0x9E37_79B9_7F4A_7C15),
                fault_period,
            ));
            plans.push(Arc::clone(&plan));
            let server = bind_chaos_server(&base, "127.0.0.1:0", s, r, 0, plan);
            shard_addrs.push(server.local_addr());
            shard_servers.push(Some(server));
        }
        servers.push(shard_servers);
        addrs.push(shard_addrs);
    }

    // Client stack: per shard a replica group of remote clients, groups
    // composed under a ShardedStore. Tight timeouts and a single retry keep
    // the dead-replica path fast; the breaker then removes even that cost.
    let client_config = RemoteStoreConfig {
        connect_timeout: Duration::from_millis(200),
        op_timeout: Duration::from_millis(300),
        retries: 1,
        backoff: Duration::from_millis(2),
        pool_size: 2,
    };
    let replica_config = ReplicaConfig {
        trip_after: 2,
        hold_ops: 4,
        max_hold_ops: 64,
    };
    let mut remote_clients: Vec<Arc<RemoteReportStore>> = Vec::new();
    let mut groups: Vec<Arc<ReplicatedStore>> = Vec::new();
    let mut shard_backends: Vec<Arc<dyn ReportStore>> = Vec::new();
    for shard_addrs in &addrs {
        let members: Vec<Arc<dyn CheckedStore>> = shard_addrs
            .iter()
            .map(|addr| {
                let client = Arc::new(
                    RemoteReportStore::connect_with(addr, client_config)
                        .expect("chaos remote client"),
                );
                remote_clients.push(Arc::clone(&client));
                client as Arc<dyn CheckedStore>
            })
            .collect();
        let group = Arc::new(
            ReplicatedStore::with_config(members, replica_config).expect("chaos replica group"),
        );
        groups.push(Arc::clone(&group));
        shard_backends.push(group as Arc<dyn ReportStore>);
    }
    let sharded = Arc::new(ShardedStore::new(shard_backends));
    let service = SynthesisService::builder()
        .report_store(sharded.clone() as Arc<dyn ReportStore>)
        .concurrency(clients)
        .build();

    // Phase 1: populate the fleet through the faulty wire.
    println!(
        "chaos phase 1: {shards}x{replicas} replica topology, seeded wire faults (seed {seed:#x}, period {fault_period})"
    );
    let p1 = drive(&service, codes, references, clients, rounds, false);
    let mut mismatches = p1.mismatches;

    // Phase 2: kill replica 0 of every shard mid-run. Loads fail over to
    // the surviving replicas; the dead replicas' breakers trip.
    for shard_servers in &mut servers {
        if let Some(mut server) = shard_servers[0].take() {
            server.shutdown();
        }
    }
    println!("chaos phase 2: replica 0 of every shard killed");
    let p2 = drive(&service, codes, references, clients, 1, false);
    mismatches += p2.mismatches;

    // Phase 3: restart replica 0 of every shard at its old address with an
    // EMPTY store (a wiped server rejoining) and a clean wire. Half-open
    // probes close the breakers and read-repair reconverges the copies.
    for (s, shard_servers) in servers.iter_mut().enumerate() {
        shard_servers[0] = Some(bind_chaos_server(
            &base,
            addrs[s][0],
            s,
            0,
            1,
            Arc::new(FaultPlan::clean()),
        ));
    }
    println!("chaos phase 3: replica 0 of every shard restarted empty at the same address");
    let p3 = drive(&service, codes, references, clients, rounds + 1, false);
    mismatches += p3.mismatches;

    let stats = service.stats();
    let mut replica_totals = ReplicaCounters::default();
    for group in &groups {
        absorb_replica(&mut replica_totals, &group.counters());
    }
    let mut wire = RemoteCounters::default();
    for client in &remote_clients {
        absorb_counters(&mut wire, &client.counters());
    }
    let injected: u64 = plans.iter().map(|plan| plan.injected()).sum();

    for shard_servers in &mut servers {
        for server in shard_servers.iter_mut().flatten() {
            server.shutdown();
        }
    }
    std::fs::remove_dir_all(&base).ok();

    let elapsed = p1.elapsed + p2.elapsed + p3.elapsed;
    println!(
        "{} requests in {:.2?} across 3 phases",
        stats.submitted, elapsed
    );
    println!("  {stats}");
    println!(
        "  replicas: failures={} breaker_trips={} probes={} skipped_open={} failover_reads={} read_repairs={} repair_failures={} fanout_writes={}",
        replica_totals.replica_failures,
        replica_totals.breaker_trips,
        replica_totals.breaker_probes,
        replica_totals.skipped_open,
        replica_totals.failover_reads,
        replica_totals.read_repairs,
        replica_totals.repair_failures,
        replica_totals.fanout_writes,
    );
    println!(
        "  wire: {} frames out, {} frames in, {} connects, {} retries, {} degraded, {} corrupt payloads; {injected} faults injected server-side",
        wire.frames_sent, wire.frames_received, wire.connects, wire.retries, wire.degraded, wire.corrupt_payloads,
    );

    let mut json = String::new();
    json.push_str("{\n");
    json.push_str("  \"bench\": \"servebench\",\n");
    json.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "chaos-quick" } else { "chaos" }
    ));
    json.push_str(&format!(
        "  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"shards\": {shards},\n  \"replicas\": {replicas},\n  \"fault_period\": {fault_period},\n  \"seed\": {seed},\n"
    ));
    json.push_str(&format!(
        "  \"codes\": [{}],\n",
        codes
            .iter()
            .map(|c| format!("\"{}\"", c.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    json.push_str(&format!(
        "  \"phase_elapsed_us\": [{}, {}, {}],\n",
        p1.elapsed.as_micros(),
        p2.elapsed.as_micros(),
        p3.elapsed.as_micros()
    ));
    json.push_str(&format!("  \"requests\": {},\n", stats_json(&stats)));
    json.push_str(&format!(
        "  \"chaos\": {{\"replica_failures\": {}, \"breaker_trips\": {}, \"breaker_probes\": {}, \"skipped_open\": {}, \"failover_reads\": {}, \"read_repairs\": {}, \"repair_failures\": {}, \"fanout_writes\": {}, \"injected_wire_faults\": {}, \"mismatches\": {}}},\n",
        replica_totals.replica_failures,
        replica_totals.breaker_trips,
        replica_totals.breaker_probes,
        replica_totals.skipped_open,
        replica_totals.failover_reads,
        replica_totals.read_repairs,
        replica_totals.repair_failures,
        replica_totals.fanout_writes,
        injected,
        mismatches,
    ));
    json.push_str(&format!(
        "  \"wire\": {{\"frames_sent\": {}, \"frames_received\": {}, \"bytes_sent\": {}, \"bytes_received\": {}, \"connects\": {}, \"retries\": {}, \"degraded\": {}, \"corrupt_payloads\": {}}}\n",
        wire.frames_sent,
        wire.frames_received,
        wire.bytes_sent,
        wire.bytes_received,
        wire.connects,
        wire.retries,
        wire.degraded,
        wire.corrupt_payloads,
    ));
    json.push_str("}\n");
    std::fs::write(out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    // The acceptance gates: bit-identical responses, zero failed syntheses,
    // and the availability machinery demonstrably exercised.
    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses differed from the no-store reference under chaos");
        std::process::exit(1);
    }
    if stats.failed > 0 {
        eprintln!("FAIL: {} syntheses failed under chaos", stats.failed);
        std::process::exit(1);
    }
    if replica_totals.breaker_trips == 0 {
        eprintln!("FAIL: the replica kill never tripped a breaker");
        std::process::exit(1);
    }
    if replica_totals.read_repairs == 0 {
        eprintln!("FAIL: the restarted replicas were never read-repaired");
        std::process::exit(1);
    }
    println!(
        "chaos passed: {} responses bit-identical, 0 failed syntheses, {} breaker trips, {} read repairs",
        stats.submitted, replica_totals.breaker_trips, replica_totals.read_repairs
    );
}
