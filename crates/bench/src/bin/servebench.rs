//! Serving-layer load generator: throughput, coalescing rate and
//! eviction-correctness of [`SynthesisService`] under concurrent traffic.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin servebench \
//!     [-- --quick] [--clients N] [--rounds N] [--capacity N] [--out PATH] [--check MIN_RATE]
//! ```
//!
//! The workload is catalog-shaped, like the paper's: `--clients` threads all
//! request the *same* code in lockstep rounds (a barrier per round), cycling
//! through the code set round-robin and revisiting every code once more in a
//! second pass. The first round of a code triggers exactly one SAT pipeline
//! run — the remaining clients coalesce onto it — and every revisit is served
//! from the tiered report store (a deliberately undersized memory front over
//! a JSON directory back, so the revisit pass also exercises eviction and
//! disk fault-in).
//!
//! Recorded to `BENCH_serve.json` (checked in as the serving-layer
//! trajectory): request throughput, the provenance breakdown, the dedup
//! ("coalescing") rate = fraction of requests that did **not** run the
//! pipeline themselves, and the store's eviction counters.
//!
//! Correctness is asserted, not sampled: every response must be
//! bit-identical to a serial single-caller reference report for its code —
//! across coalescing, caching, eviction and disk fault-in ("zero-eviction-
//! correctness": evictions cause zero wrong answers). Any mismatch aborts
//! with a non-zero exit.
//!
//! * `--quick` restricts to the three smallest codes (CI budget: seconds).
//! * `--check MIN_RATE` exits non-zero when the dedup rate falls below the
//!   floor, so CI fails loudly if the request layer stops deduplicating.
//! * `--portfolio` submits every request on the racing portfolio backend.
//!   The correctness oracle stays the serial single-backend reference, so
//!   this mode end-to-end-checks the race's bit-identity under serving
//!   traffic; the solved responses' per-lane attribution (races, wins,
//!   cancelled work) is reported and recorded.

use std::sync::{Arc, Barrier};
use std::time::Instant;

use dftsp::{
    BackendChoice, JsonReportStore, PortfolioStats, SynthesisEngine, SynthesisRequest,
    SynthesisService, TieredStore,
};
use dftsp_bench::{evaluation_codes, quick_codes};
use dftsp_code::CssCode;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let clients: usize = flag_value(&args, "--clients")
        .map(|s| s.parse().expect("--clients takes an integer"))
        .unwrap_or(4)
        .max(1);
    let rounds: usize = flag_value(&args, "--rounds")
        .map(|s| s.parse().expect("--rounds takes an integer"))
        .unwrap_or(2)
        .max(1);
    let capacity: usize = flag_value(&args, "--capacity")
        .map(|s| s.parse().expect("--capacity takes an integer"))
        .unwrap_or(2);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_serve.json".to_string());
    let check: Option<f64> =
        flag_value(&args, "--check").map(|s| s.parse().expect("--check takes a float"));
    let portfolio = args.iter().any(|a| a == "--portfolio");

    let codes: Vec<CssCode> = if quick {
        quick_codes()
    } else {
        evaluation_codes()
            .into_iter()
            .filter(|code| code.parameters().2 == 3)
            .collect()
    };

    // Serial single-caller reference reports: the correctness oracle every
    // served response is checked against, bit for bit.
    let reference_engine = SynthesisEngine::builder().threads(1).build();
    let references: Vec<String> = codes
        .iter()
        .map(|code| {
            protocol_rendering(
                &reference_engine
                    .synthesize(code)
                    .unwrap_or_else(|e| panic!("{}: {e}", code.name()))
                    .protocol,
            )
        })
        .collect();

    // An undersized memory front over a scratch JSON directory: revisit
    // rounds hit evictions and disk fault-in on purpose.
    let dir = std::env::temp_dir().join(format!("dftsp-servebench-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let disk = Arc::new(JsonReportStore::new(&dir).expect("scratch store directory"));
    let store = Arc::new(TieredStore::new(capacity).with_back(disk.clone() as Arc<_>));
    let service = SynthesisService::builder()
        .report_store(store.clone() as Arc<_>)
        .concurrency(clients)
        .build();

    // The drive: every round, all clients hit the same code at a barrier.
    // `rounds` passes over the code set make the later passes store-served.
    let schedule: Vec<usize> = (0..rounds).flat_map(|_| 0..codes.len()).collect();
    let barrier = Arc::new(Barrier::new(clients));
    let start = Instant::now();
    let (mismatches, portfolio_totals) = std::thread::scope(|scope| {
        let workers: Vec<_> = (0..clients)
            .map(|_| {
                let service = service.clone();
                let barrier = Arc::clone(&barrier);
                let codes = &codes;
                let references = &references;
                let schedule = &schedule;
                scope.spawn(move || {
                    let mut mismatches = 0usize;
                    // Per-lane attribution of the pipeline runs this client
                    // triggered (solved responses only — coalesced and cached
                    // responses repeat another run's statistics).
                    let mut attribution = PortfolioStats::default();
                    for &code_index in schedule {
                        barrier.wait();
                        let mut request = SynthesisRequest::new(codes[code_index].clone());
                        if portfolio {
                            request = request.solver(BackendChoice::portfolio());
                        }
                        let response = service
                            .submit(request)
                            .unwrap_or_else(|e| panic!("{}: {e}", codes[code_index].name()));
                        if protocol_rendering(&response.report.protocol) != references[code_index] {
                            eprintln!(
                                "MISMATCH: {} served a wrong report ({})",
                                codes[code_index].name(),
                                response.provenance
                            );
                            mismatches += 1;
                        }
                        if response.provenance == dftsp::Provenance::Solved {
                            attribution.absorb(&response.report.sat_totals().portfolio);
                        }
                    }
                    (mismatches, attribution)
                })
            })
            .collect();
        workers.into_iter().map(|w| w.join().expect("client")).fold(
            (0usize, PortfolioStats::default()),
            |(mismatches, mut totals), (m, attribution)| {
                totals.absorb(&attribution);
                (mismatches + m, totals)
            },
        )
    });
    let elapsed = start.elapsed();
    std::fs::remove_dir_all(&dir).ok();

    let stats = service.stats();
    let total = stats.submitted;
    let throughput = total as f64 / elapsed.as_secs_f64();
    let dedup = stats.dedup_rate();
    println!(
        "{} requests ({} clients × {} rounds × {} codes) in {:.2?}: {:.1} req/s",
        total,
        clients,
        rounds,
        codes.len(),
        elapsed,
        throughput
    );
    println!("  {stats}");
    println!(
        "  store: {} front hits, {} back hits, {} evictions, {} corrupt",
        store.front_hits(),
        store.back_hits(),
        store.evictions(),
        disk.corrupt_entries()
    );
    if portfolio {
        println!("  portfolio: {portfolio_totals}");
    }

    let json = render_json(
        quick,
        clients,
        rounds,
        capacity,
        &codes,
        elapsed.as_micros(),
        throughput,
        &stats,
        &store,
        portfolio.then_some(&portfolio_totals),
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if mismatches > 0 {
        eprintln!("FAIL: {mismatches} responses differed from the serial reference");
        std::process::exit(1);
    }
    println!("eviction-correctness passed: 0 mismatches across {total} responses");
    if let Some(min_rate) = check {
        if dedup < min_rate {
            eprintln!(
                "FAIL: dedup (coalescing + cache) rate {dedup:.3} is below the required {min_rate:.3}"
            );
            std::process::exit(1);
        }
        println!("check passed: dedup rate {dedup:.3} >= {min_rate:.3}");
    }
}

/// The deterministic content of a protocol (prep circuit + layers) — what
/// every served response must reproduce bit for bit.
fn protocol_rendering(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    clients: usize,
    rounds: usize,
    capacity: usize,
    codes: &[CssCode],
    elapsed_us: u128,
    throughput: f64,
    stats: &dftsp::ServiceStats,
    store: &TieredStore,
    portfolio: Option<&PortfolioStats>,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"servebench\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "d3-catalog" }
    ));
    out.push_str(&format!(
        "  \"clients\": {clients},\n  \"rounds\": {rounds},\n  \"front_capacity\": {capacity},\n"
    ));
    out.push_str(&format!(
        "  \"codes\": [{}],\n",
        codes
            .iter()
            .map(|c| format!("\"{}\"", c.name()))
            .collect::<Vec<_>>()
            .join(", ")
    ));
    out.push_str(&format!("  \"elapsed_us\": {elapsed_us},\n"));
    out.push_str(&format!("  \"requests_per_second\": {throughput:.2},\n"));
    out.push_str(&format!(
        "  \"requests\": {{\"submitted\": {}, \"solved\": {}, \"coalesced\": {}, \"cached\": {}, \"cancelled\": {}, \"failed\": {}}},\n",
        stats.submitted, stats.solved, stats.coalesced, stats.cached, stats.cancelled, stats.failed
    ));
    out.push_str(&format!("  \"dedup_rate\": {:.4},\n", stats.dedup_rate()));
    out.push_str(&format!(
        "  \"store\": {{\"front_hits\": {}, \"back_hits\": {}, \"evictions\": {}}}",
        store.front_hits(),
        store.back_hits(),
        store.evictions()
    ));
    if let Some(p) = portfolio {
        let lanes: Vec<String> = dftsp::PortfolioLane::ALL
            .iter()
            .map(|&lane| {
                let l = p.lane(lane);
                format!(
                    "{{\"lane\": \"{}\", \"wins\": {}, \"losses\": {}, \"cancelled_conflicts\": {}, \"time_us\": {}}}",
                    lane.name(),
                    l.wins,
                    l.losses,
                    l.cancelled_conflicts,
                    l.time_us
                )
            })
            .collect();
        out.push_str(&format!(
            ",\n  \"portfolio\": {{\"races\": {}, \"solo\": {}, \"lanes\": [{}]}}",
            p.races,
            p.solo,
            lanes.join(", ")
        ));
    }
    out.push_str("\n}\n");
    out
}
