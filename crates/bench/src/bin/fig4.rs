//! Regenerates Fig. 4 of the paper: logical error rates of the synthesized
//! deterministic `|0…0⟩_L` preparation protocols under circuit-level
//! depolarizing noise.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin fig4 [-- --quick] [--samples N] [--points-per-decade M]
//! ```
//!
//! The output is a table of `p` vs. `p_L` per code (one column per series,
//! including the `p_L = p` "Linear" reference of the figure) followed by the
//! fitted log-log slope of each series, which should be ≈ 2 for a
//! fault-tolerant protocol on a distance-3 code. The distance-1 cat-state
//! workloads scale as O(p) by construction — any weight-1 residual is
//! already logical there — so their slope sits near the Linear reference.

use dftsp::SynthesisEngine;
use dftsp_bench::{evaluation_codes, quick_codes};
use dftsp_noise::{
    default_physical_rates, linear_reference, logical_error_curve, ErrorRateCurve, SubsetConfig,
};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let samples = flag_value(&args, "--samples").unwrap_or(if quick { 500 } else { 2000 });
    let points_per_decade = flag_value(&args, "--points-per-decade").unwrap_or(3);

    let codes = if quick {
        quick_codes()
    } else {
        evaluation_codes()
    };
    let rates = default_physical_rates(points_per_decade);
    let config = SubsetConfig {
        max_faults: 4,
        samples_per_stratum: samples,
    };

    let engine = SynthesisEngine::default();
    eprintln!(
        "synthesizing {} protocols on {} threads ...",
        codes.len(),
        engine.threads()
    );
    let reports = engine.synthesize_all(&codes);
    let mut curves: Vec<ErrorRateCurve> = vec![linear_reference(&rates)];
    for (code, report) in codes.iter().zip(reports) {
        match report {
            Ok(report) => {
                eprintln!("sampling {} ...", code.name());
                curves.push(logical_error_curve(&report.protocol, &rates, &config, 2025));
            }
            Err(e) => eprintln!("{} skipped ({e})", code.name()),
        }
    }

    // Header.
    print!("{:>12}", "p");
    for curve in &curves {
        print!(" {:>14}", curve.label);
    }
    println!();
    for (i, &p) in rates.iter().enumerate() {
        print!("{:>12.3e}", p);
        for curve in &curves {
            print!(" {:>14.4e}", curve.points[i].logical.mean);
        }
        println!();
    }
    println!();
    println!("log-log slopes (≈1 for the linear reference, ≈2 for fault-tolerant protocols):");
    for curve in &curves {
        match curve.log_log_slope() {
            Some(slope) => println!("  {:<14} {slope:.2}", curve.label),
            None => println!("  {:<14} n/a (all-zero estimates)", curve.label),
        }
    }
}

fn flag_value(args: &[String], flag: &str) -> Option<usize> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .and_then(|v| v.parse().ok())
}
