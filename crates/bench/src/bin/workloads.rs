//! Workload gate: the extended catalog entries, end-to-end.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin workloads [-- --quick]
//! ```
//!
//! Two gates, both of which exit non-zero on failure:
//!
//! 1. **Order-`t` synthesis.** Catalog entries are synthesized with
//!    `target_order(t)` and the result is re-checked with the fault-set
//!    verifier ([`check_fault_tolerance_order_with`]): every set of s ≤ t
//!    faults must leave a residual of reduced weight ≤ s per CSS sector.
//!    `--quick` runs the Cat-8 cat state at order 2 and the QR-17
//!    `[[17,1,5]]` code end-to-end at order 1; the full run adds Surface-5
//!    at order 1 (expensive, ~15 min single-core). Order-2 *synthesis* on
//!    the distance-5 entries is beyond the current repair loop's budget
//!    (the exhaustive fault-set passes run to CPU-hours without
//!    converging) and is tracked in ROADMAP, so no mode attempts it.
//! 2. **Cat-state service round-trip.** A [`WorkloadKind::CatStatePrep`]
//!    request is driven through [`SynthesisService`] against a fresh JSON
//!    report store: the first submission must report
//!    [`Provenance::Solved`], the second [`Provenance::Cached`], and the
//!    cached report must be bit-identical (same debug rendering) to the
//!    solved one — the store round-trip at the current codec version.

use std::sync::Arc;
use std::time::Instant;

use dftsp::{
    check_fault_tolerance_order_with, FtCheckOptions, JsonReportStore, Provenance,
    SynthesisRequest, SynthesisService, WorkloadKind,
};
use dftsp_code::{catalog, CssCode};

fn main() {
    let quick = std::env::args().any(|a| a == "--quick");
    let threads = std::thread::available_parallelism().map_or(1, |p| p.get());
    let mut all_pass = true;

    let mut jobs: Vec<(CssCode, usize)> = vec![(catalog::cat_state(8), 2), (catalog::qr17(), 1)];
    if !quick {
        jobs.push((catalog::surface5(), 1));
    }
    for (code, order) in &jobs {
        all_pass &= gate_order(code, *order, threads);
    }
    all_pass &= gate_cat_service_round_trip();

    if !all_pass {
        std::process::exit(1);
    }
    println!("workload gate: all checks passed");
}

/// Synthesizes `code` at the target `order` and re-checks the protocol with
/// the order-`order` verifier. Returns `false` (after printing why) on any
/// failure.
fn gate_order(code: &CssCode, order: usize, threads: usize) -> bool {
    let (n, k, d) = code.parameters();
    let start = Instant::now();
    let engine = dftsp::SynthesisEngine::builder()
        .threads(threads)
        .target_order(order)
        .build();
    let report = match engine.synthesize(code) {
        Ok(report) => report,
        Err(e) => {
            println!("{} [[{n},{k},{d}]]: synthesis FAILED: {e}", code.name());
            return false;
        }
    };
    let synth_time = start.elapsed();
    let start = Instant::now();
    let check = check_fault_tolerance_order_with(
        &report.protocol,
        order,
        &FtCheckOptions {
            max_violations: 5,
            threads,
        },
    );
    println!(
        "{} [[{n},{k},{d}]]: synth {synth_time:.2?}, order-{order} check {:.2?}: {} sets over {} locations, {} violations",
        code.name(),
        start.elapsed(),
        check.sets_checked,
        check.locations,
        check.violations_found,
    );
    check.violations_found == 0
}

/// Drives a cat-state request through the service twice against a fresh
/// JSON store and demands Solved → Cached with bit-identical reports.
fn gate_cat_service_round_trip() -> bool {
    let dir = std::env::temp_dir().join(format!("dftsp-workload-gate-{}", std::process::id()));
    std::fs::remove_dir_all(&dir).ok();
    let store = match JsonReportStore::new(&dir) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            println!("cat-state round-trip: cannot open store: {e}");
            return false;
        }
    };
    let service = SynthesisService::builder().report_store(store).build();
    let request = || {
        SynthesisRequest::new(catalog::steane()).workload(WorkloadKind::CatStatePrep { size: 4 })
    };

    let mut renderings = Vec::new();
    for (pass, expected) in [
        ("first", Provenance::Solved),
        ("second", Provenance::Cached),
    ] {
        let response = match service.submit(request()) {
            Ok(response) => response,
            Err(e) => {
                println!("cat-state round-trip: {pass} submission failed: {e}");
                return false;
            }
        };
        println!(
            "cat-state round-trip: {pass} pass {} in {:.2?} (workload {})",
            response.provenance, response.solve_time, response.report.workload,
        );
        if response.provenance != expected {
            println!("cat-state round-trip: expected provenance {expected}");
            return false;
        }
        renderings.push(format!(
            "{:?}|{:?}|{:?}|{:?}",
            response.report.workload,
            response.report.protocol.prep,
            response.report.protocol.layers,
            response.report.stages
        ));
    }
    std::fs::remove_dir_all(&dir).ok();
    if renderings[0] != renderings[1] {
        println!("cat-state round-trip: cached report differs from the solved one");
        return false;
    }
    println!("cat-state round-trip: cached report is bit-identical to the solved one");
    true
}
