//! Regenerates Table I of the paper: circuit metrics of the synthesized
//! deterministic fault-tolerant state-preparation circuits.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin table1 [-- --quick] [--code NAME] [--global] [--opt-prep]
//! ```
//!
//! By default every catalog code is synthesized with the heuristic prep and
//! per-part optimal verification/correction (the paper's "Heu/Opt"
//! configuration). `--global` adds the global-optimization column,
//! `--opt-prep` adds the optimal-prep rows, `--quick` restricts to the three
//! smallest codes.

use dftsp::PrepMethod;
use dftsp_bench::{branch_list, evaluation_codes, quick_codes, synthesize_row, VerificationFlavor};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let with_global = args.iter().any(|a| a == "--global");
    let with_opt_prep = args.iter().any(|a| a == "--opt-prep");
    let code_filter = args
        .iter()
        .position(|a| a == "--code")
        .and_then(|i| args.get(i + 1))
        .map(|s| s.to_lowercase());

    let codes = if quick {
        quick_codes()
    } else {
        evaluation_codes()
    };
    let mut prep_methods = vec![PrepMethod::Heuristic];
    if with_opt_prep {
        prep_methods.push(PrepMethod::Optimal);
    }
    let mut flavors = vec![VerificationFlavor::Optimal];
    if with_global {
        flavors.push(VerificationFlavor::Global);
    }

    println!(
        "{:<12} {:>11} {:>5} {:>7} | {:>28} | {:>28} | {:>6} {:>6} {:>7} {:>7}",
        "Code",
        "[[n,k,d]]",
        "Prep",
        "Verif.",
        "Layer-1 verif/corr",
        "Layer-2 verif/corr",
        "ΣANC",
        "ΣCNOT",
        "∅ANC",
        "∅CNOT"
    );
    println!("{}", "-".repeat(140));

    for code in codes {
        if let Some(filter) = &code_filter {
            if !code.name().to_lowercase().contains(filter) {
                continue;
            }
        }
        for &prep in &prep_methods {
            for &flavor in &flavors {
                match synthesize_row(&code, prep, flavor) {
                    Ok(row) => print_row(&row),
                    Err(e) => {
                        let (n, k, d) = code.parameters();
                        println!(
                            "{:<12} {:>11} {:>5} {:>7} | synthesis failed: {e}",
                            code.name(),
                            format!("[[{n},{k},{d}]]"),
                            prep.to_string(),
                            flavor.to_string()
                        );
                    }
                }
            }
        }
    }
}

fn print_row(row: &dftsp_bench::TableRow) {
    let m = &row.metrics;
    let (n, k, d) = m.parameters;
    let layer = |index: usize| -> String {
        match m.layers.get(index) {
            None => "-".to_string(),
            Some(l) => format!(
                "a={}+{} w={}+{} c={}/{} f={}/{}",
                l.verification_ancillas,
                l.flag_ancillas,
                l.verification_cnots,
                l.flag_cnots,
                branch_list(&l.correction_ancillas),
                branch_list(&l.correction_cnots),
                branch_list(&l.hook_correction_ancillas),
                branch_list(&l.hook_correction_cnots),
            ),
        }
    };
    println!(
        "{:<12} {:>11} {:>5} {:>7} | {:>28} | {:>28} | {:>6} {:>6} {:>7.2} {:>7.2}",
        m.code_name,
        format!("[[{n},{k},{d}]]"),
        m.prep_method.to_string(),
        row.verification_flavor.to_string(),
        layer(0),
        layer(1),
        m.total_verification_ancillas,
        m.total_verification_cnots,
        m.avg_correction_ancillas,
        m.avg_correction_cnots,
    );
}
