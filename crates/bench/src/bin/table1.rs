//! Regenerates Table I of the paper: circuit metrics of the synthesized
//! deterministic fault-tolerant state-preparation circuits.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin table1 [-- --quick] [--code NAME] [--global] [--opt-prep] [--store PATH] [--portfolio]
//! ```
//!
//! By default every catalog code (Table I plus the extended workloads) is
//! synthesized with the heuristic prep and per-part optimal
//! verification/correction (the paper's "Heu/Opt" configuration).
//! `--global` adds the global-optimization column, `--opt-prep` adds the
//! optimal-prep rows, `--quick` restricts to the smallest codes.
//! `--code NAME` synthesizes exactly one catalog entry, resolved by its
//! case-insensitive name; an unknown name lists the known codes and exits
//! non-zero. `--store PATH` additionally exercises the persistent
//! JSON report store: the selected codes are synthesized twice against the
//! store at `PATH` and the cold-vs-warm timings are printed (re-running the
//! command with the same path starts warm). `--portfolio` synthesizes every
//! row on the racing portfolio backend; the solver totals then include the
//! per-lane race attribution (wins, losses, cancelled work).

use std::sync::Arc;
use std::time::Instant;

use dftsp::{BackendChoice, JsonReportStore, PrepMethod, ReportStore, SatStats, SynthesisEngine};
use dftsp_bench::{
    branch_list, evaluation_codes, quick_codes, synthesize_row_on, VerificationFlavor,
};
use dftsp_code::{catalog, CssCode};

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let with_global = args.iter().any(|a| a == "--global");
    let with_opt_prep = args.iter().any(|a| a == "--opt-prep");
    let code_filter = args
        .iter()
        .position(|a| a == "--code")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let store_path = args
        .iter()
        .position(|a| a == "--store")
        .and_then(|i| args.get(i + 1))
        .cloned();
    let backend = if args.iter().any(|a| a == "--portfolio") {
        BackendChoice::portfolio()
    } else {
        BackendChoice::default()
    };

    // `--code NAME` resolves a single catalog entry by its exact
    // (case-insensitive) name; anything else lists the known names and
    // exits non-zero instead of silently producing an empty table.
    let selected: Vec<CssCode> = if let Some(name) = &code_filter {
        match catalog::by_name(name) {
            Some(code) => vec![code],
            None => {
                eprintln!("unknown code {name:?}; known codes:");
                for known in catalog::known_names() {
                    eprintln!("  {known}");
                }
                std::process::exit(1);
            }
        }
    } else if quick {
        quick_codes()
    } else {
        evaluation_codes()
    };
    let mut prep_methods = vec![PrepMethod::Heuristic];
    if with_opt_prep {
        prep_methods.push(PrepMethod::Optimal);
    }
    let mut flavors = vec![VerificationFlavor::Optimal];
    if with_global {
        flavors.push(VerificationFlavor::Global);
    }

    println!(
        "{:<12} {:>11} {:>5} {:>7} | {:>28} | {:>28} | {:>6} {:>6} {:>7} {:>7}",
        "Code",
        "[[n,k,d]]",
        "Prep",
        "Verif.",
        "Layer-1 verif/corr",
        "Layer-2 verif/corr",
        "ΣANC",
        "ΣCNOT",
        "∅ANC",
        "∅CNOT"
    );
    println!("{}", "-".repeat(140));
    let mut solver_totals = SatStats::default();
    let mut solve_time = std::time::Duration::ZERO;
    for code in &selected {
        for &prep in &prep_methods {
            for &flavor in &flavors {
                match synthesize_row_on(code, prep, flavor, backend) {
                    Ok(row) => {
                        solver_totals.absorb(&row.sat);
                        solve_time += row.synthesis_time;
                        print_row(&row);
                    }
                    Err(e) => {
                        let (n, k, d) = code.parameters();
                        println!(
                            "{:<12} {:>11} {:>5} {:>7} | synthesis failed: {e}",
                            code.name(),
                            format!("[[{n},{k},{d}]]"),
                            prep.to_string(),
                            flavor.to_string()
                        );
                    }
                }
            }
        }
    }

    println!();
    println!("Solver totals over all rows ({solve_time:.2?} synthesis time):");
    println!("  {solver_totals}");

    if let Some(path) = store_path {
        run_store_round_trip(&path, &selected, &prep_methods);
    }
}

/// Synthesizes the selected codes twice per prep method against the JSON
/// report store at `path` and prints cold-vs-warm timings. The store keys
/// include the prep method, so `--opt-prep` rows cache separately. The first
/// pass is only cold if the store directory does not already hold the
/// reports — re-running the command with the same path demonstrates the
/// cross-process warm start.
fn run_store_round_trip(path: &str, codes: &[CssCode], prep_methods: &[PrepMethod]) {
    let store = match JsonReportStore::new(path) {
        Ok(store) => Arc::new(store),
        Err(e) => {
            eprintln!("cannot open report store at {path}: {e}");
            std::process::exit(1);
        }
    };

    println!();
    println!("Report store round-trip against {path}:");
    for &prep in prep_methods {
        let engine = SynthesisEngine::builder()
            .prep_method(prep)
            .report_store(store.clone())
            .build();
        let mut renderings: Vec<Vec<String>> = Vec::new();
        for pass in ["first pass", "second pass"] {
            let hits_before = store.hits();
            let misses_before = store.misses();
            let start = Instant::now();
            let reports = engine.synthesize_all(codes);
            let elapsed = start.elapsed();
            let failures = reports.iter().filter(|r| r.is_err()).count();
            println!(
                "  {prep} prep, {pass}: {elapsed:>10.2?}  ({} served from store, {} synthesized{})",
                store.hits() - hits_before,
                store.misses() - misses_before,
                if failures > 0 {
                    format!(", {failures} failed")
                } else {
                    String::new()
                }
            );
            renderings.push(
                reports
                    .iter()
                    .flatten()
                    .map(|report| {
                        format!(
                            "{:?}|{:?}|{:?}",
                            report.protocol.prep, report.protocol.layers, report.stages
                        )
                    })
                    .collect(),
            );
        }
        if renderings[0] == renderings[1] {
            println!("  {prep} prep: warm reports are bit-identical to the first pass");
        } else {
            println!("  {prep} prep: WARNING: warm reports differ from the first pass");
        }
    }
}

fn print_row(row: &dftsp_bench::TableRow) {
    let m = &row.metrics;
    let (n, k, d) = m.parameters;
    let layer = |index: usize| -> String {
        match m.layers.get(index) {
            None => "-".to_string(),
            Some(l) => format!(
                "a={}+{} w={}+{} c={}/{} f={}/{}",
                l.verification_ancillas,
                l.flag_ancillas,
                l.verification_cnots,
                l.flag_cnots,
                branch_list(&l.correction_ancillas),
                branch_list(&l.correction_cnots),
                branch_list(&l.hook_correction_ancillas),
                branch_list(&l.hook_correction_cnots),
            ),
        }
    };
    println!(
        "{:<12} {:>11} {:>5} {:>7} | {:>28} | {:>28} | {:>6} {:>6} {:>7.2} {:>7.2}",
        m.code_name,
        format!("[[{n},{k},{d}]]"),
        m.prep_method.to_string(),
        row.verification_flavor.to_string(),
        layer(0),
        layer(1),
        m.total_verification_ancillas,
        m.total_verification_cnots,
        m.avg_correction_ancillas,
        m.avg_correction_cnots,
    );
}
