//! Solver microbenchmark: tuned vs reference hot path on the evaluation catalog.
//!
//! ```text
//! cargo run --release -p dftsp-bench --bin satbench [-- --quick] [--iters N] [--out PATH] [--check MIN_SPEEDUP]
//! ```
//!
//! Runs the SAT-driven pipeline (verification + correction synthesis around
//! one shared preparation circuit, via `synthesize_with_prep`) of every
//! evaluation-catalog code (the Table I workload plus the extended
//! workloads) twice — once on the
//! default CDCL backend with the tuned hot path (VSIDS decision heap, LBD
//! clause-database reduction, recursive clause minimization) and once on
//! `BackendChoice::CdclReference` with those decision/learning heuristics
//! disabled (the propagation layer — blocker literals, binary-clause path —
//! is structural and active in both configurations) — and
//! writes the wall-clock timings, speedups and solver counters to a
//! machine-readable JSON file (`BENCH_solver.json` by default). The
//! preparation circuit is synthesized once per code *outside* the timed
//! region: prep is a seeded SAT-free search whose runtime dwarfs and has
//! nothing to say about the solver. This file is the repo's perf trajectory
//! for the solver: each PR that touches the hot path re-runs the bench and
//! commits the fresh numbers.
//!
//! Alongside the synthesis pipeline the bench times pure-solver instances
//! (pigeonhole, parity + cardinality — the shapes the encodings produce),
//! where the hot path is the entire cost.
//!
//! Each code additionally runs once on `BackendChoice::portfolio()` (the
//! deterministic backend race); with `--check` the summed portfolio time is
//! gated at [`PORTFOLIO_OVERHEAD_ALLOWANCE`]× the summed per-code best
//! single backend, so the race can never silently regress below the floor
//! it is supposed to track.
//!
//! * `--quick` restricts to the smallest codes and the small
//!   microbench instance (CI budget: seconds).
//! * `--iters N` takes the best of N runs per configuration (default 3).
//! * `--check MIN_SPEEDUP` exits non-zero when the overall
//!   `reference_time / tuned_time` (synthesis + microbench) falls below the
//!   threshold, so CI fails loudly on solver performance regressions
//!   instead of silently absorbing them.
//! * `--threads-sweep` switches to the engine-parallelism sweep: it asserts
//!   that `threads(1)` and `threads(4)` produce bit-identical reports
//!   (protocols, per-stage statistics and branch counts; wall-clock times
//!   excluded) for `synthesize` on the quick codes plus the 15-qubit
//!   tetrahedral code and for `globally_optimize` on Steane and Shor, then
//!   measures the tetrahedral full-synthesis speedup of `threads(4)` over
//!   `threads(1)`; with `--check MIN_SPEEDUP` that speedup is gated.
//!
//! The default mode also runs the tuned backend once per code with
//! `threads(1)` and records per-stage serial wall times next to the parallel
//! ones (`serial_us` columns in the JSON), so the trajectory shows where the
//! fan-out actually pays.

use std::time::{Duration, Instant};

use dftsp::{BackendChoice, SatStats, SynthesisEngine};
use dftsp_bench::{evaluation_codes, pigeonhole, quick_codes};
use dftsp_code::{catalog, CssCode};
use dftsp_sat::{Encoder, Lit, Solver, SolverConfig};

/// Per-stage breakdown of one synthesis run: stage name, wall time, stats.
type StageBreakdown = Vec<(String, Duration, SatStats)>;

struct CodeResult {
    name: String,
    tuned: Duration,
    tuned_serial: Duration,
    reference: Duration,
    portfolio: Duration,
    tuned_sat: SatStats,
    reference_sat: SatStats,
    portfolio_sat: SatStats,
    stages: StageBreakdown,
    /// Per-stage wall times of the `threads(1)` tuned run, parallel to
    /// `stages` (the stage lists are bit-identical across thread counts).
    serial_stage_times: Vec<Duration>,
}

/// How much slower than the best single backend the racing portfolio may be
/// before the `--check` gate fails: thread spawning, chunked budgets and the
/// canonical re-extraction solve are real but bounded scheduling overhead.
const PORTFOLIO_OVERHEAD_ALLOWANCE: f64 = 1.3;

fn main() {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let quick = args.iter().any(|a| a == "--quick");
    let iters: u32 = flag_value(&args, "--iters")
        .map(|s| s.parse().expect("--iters takes an integer"))
        .unwrap_or(3)
        .max(1);
    let out = flag_value(&args, "--out").unwrap_or_else(|| "BENCH_solver.json".to_string());
    let check: Option<f64> =
        flag_value(&args, "--check").map(|s| s.parse().expect("--check takes a float"));

    if args.iter().any(|a| a == "--threads-sweep") {
        threads_sweep(iters, check);
        return;
    }

    let codes: Vec<CssCode> = if quick {
        quick_codes()
    } else {
        evaluation_codes()
            .into_iter()
            .filter(|code| code.parameters().2 == 3)
            .collect()
    };

    println!(
        "{:<14} {:>12} {:>12} {:>12} {:>8}   counters (tuned vs reference)",
        "Code", "tuned", "reference", "portfolio", "speedup"
    );
    let mut results = Vec::new();
    for code in &codes {
        // One shared prep per code, outside the timed region.
        let prep = dftsp::synthesize_prep(code, &dftsp::PrepOptions::default());
        let (tuned, tuned_sat, stages) = run_config(code, &prep, BackendChoice::Cdcl, iters, None);
        let (tuned_serial, _, serial_stages) =
            run_config(code, &prep, BackendChoice::Cdcl, iters, Some(1));
        let (reference, reference_sat, _) =
            run_config(code, &prep, BackendChoice::CdclReference, iters, None);
        let (portfolio, portfolio_sat, _) =
            run_config(code, &prep, BackendChoice::portfolio(), iters, None);
        // Bit-identical stage lists at every thread count — only wall times
        // may differ, so the serial times can ride along as a column.
        assert_eq!(
            stages.iter().map(|s| &s.0).collect::<Vec<_>>(),
            serial_stages.iter().map(|s| &s.0).collect::<Vec<_>>(),
            "{}: stage lists must match across thread counts",
            code.name()
        );
        let serial_stage_times: Vec<Duration> = serial_stages.iter().map(|s| s.1).collect();
        println!(
            "{:<14} {:>12.2?} {:>12.2?} {:>12.2?} {:>7.2}x   conflicts {} vs {}, props/dec {:.1} vs {:.1}, reduced {}",
            code.name(),
            tuned,
            reference,
            portfolio,
            reference.as_secs_f64() / tuned.as_secs_f64(),
            tuned_sat.conflicts,
            reference_sat.conflicts,
            tuned_sat.propagations_per_decision(),
            reference_sat.propagations_per_decision(),
            tuned_sat.reduced_clauses,
        );
        results.push(CodeResult {
            name: code.name().to_string(),
            tuned,
            tuned_serial,
            reference,
            portfolio,
            tuned_sat,
            reference_sat,
            portfolio_sat,
            stages,
            serial_stage_times,
        });
    }

    let total_tuned: Duration = results.iter().map(|r| r.tuned).sum();
    let total_reference: Duration = results.iter().map(|r| r.reference).sum();
    let total_portfolio: Duration = results.iter().map(|r| r.portfolio).sum();
    // The portfolio regression floor: per code, the faster of the two single
    // backends — the race should track it up to scheduling overhead.
    let total_best_single: Duration = results.iter().map(|r| r.tuned.min(r.reference)).sum();
    let speedup = total_reference.as_secs_f64() / total_tuned.as_secs_f64();
    let portfolio_overhead = total_portfolio.as_secs_f64() / total_best_single.as_secs_f64();
    println!(
        "total: tuned {total_tuned:.2?} vs reference {total_reference:.2?} ({speedup:.2}x speedup)"
    );
    println!(
        "portfolio: {total_portfolio:.2?} vs best-single {total_best_single:.2?} ({portfolio_overhead:.2}x of the floor)"
    );

    // Pure-solver microbenchmarks: synthesis wall time includes SAT-free
    // work (fault enumeration, encoding) that dilutes the solver speedup, so
    // the trajectory also records solver-only instances where the hot path
    // is the whole cost.
    println!();
    println!(
        "{:<22} {:>12} {:>12} {:>8}",
        "Microbench", "tuned", "reference", "speedup"
    );
    let micro: Vec<MicroResult> = micro_instances(quick)
        .into_iter()
        .map(|(name, build)| {
            let tuned = best_micro_time(&build, SolverConfig::default(), iters);
            let reference = best_micro_time(&build, SolverConfig::reference(), iters);
            println!(
                "{:<22} {:>12.2?} {:>12.2?} {:>7.2}x",
                name,
                tuned,
                reference,
                reference.as_secs_f64() / tuned.as_secs_f64()
            );
            MicroResult {
                name,
                tuned,
                reference,
            }
        })
        .collect();

    // Overall speedup: synthesis SAT pipeline plus the solver-only
    // microbenchmarks, which is where the hot path dominates wall clock.
    // This is the metric the CI regression check gates on.
    let micro_tuned: Duration = micro.iter().map(|m| m.tuned).sum();
    let micro_reference: Duration = micro.iter().map(|m| m.reference).sum();
    let overall = (total_reference + micro_reference).as_secs_f64()
        / (total_tuned + micro_tuned).as_secs_f64();
    println!("overall (synthesis + microbench): {overall:.2}x speedup");

    let json = render_json(
        quick,
        iters,
        &results,
        &micro,
        total_tuned,
        total_reference,
        total_portfolio,
        speedup,
        overall,
    );
    std::fs::write(&out, json).unwrap_or_else(|e| panic!("cannot write {out}: {e}"));
    println!("wrote {out}");

    if let Some(min_speedup) = check {
        let mut failed = false;
        if overall < min_speedup {
            eprintln!(
                "FAIL: overall tuned-solver speedup {overall:.2}x is below the required {min_speedup:.2}x"
            );
            failed = true;
        }
        if portfolio_overhead > PORTFOLIO_OVERHEAD_ALLOWANCE {
            eprintln!(
                "FAIL: portfolio synthesis time is {portfolio_overhead:.2}x the best single backend (allowed {PORTFOLIO_OVERHEAD_ALLOWANCE:.2}x)"
            );
            failed = true;
        }
        if failed {
            std::process::exit(1);
        }
        println!(
            "check passed: {overall:.2}x >= {min_speedup:.2}x, portfolio at {portfolio_overhead:.2}x of the single-backend floor"
        );
    }
}

/// Worker count the sweep compares against the serial baseline.
const SWEEP_THREADS: usize = 4;

/// The `--threads-sweep` mode: bit-for-bit thread-count equivalence checks
/// plus the parallel speedup gate on the 15-qubit tetrahedral code.
fn threads_sweep(iters: u32, check: Option<f64>) {
    let cores = std::thread::available_parallelism().map_or(1, |n| n.get());
    println!(
        "threads sweep: asserting threads(1) == threads({SWEEP_THREADS}) bit-for-bit ({cores} core(s) available)"
    );

    // The tetrahedral prep (a SAT-free seeded search) takes minutes on its
    // own — synthesize it once and share it between the equivalence check
    // and the speedup measurement below.
    let tetrahedral = catalog::tetrahedral();
    let tetrahedral_prep = dftsp::synthesize_prep(&tetrahedral, &dftsp::PrepOptions::default());

    for code in &quick_codes() {
        let prep = dftsp::synthesize_prep(code, &dftsp::PrepOptions::default());
        assert_synthesize_equivalent(code, &prep);
    }
    assert_synthesize_equivalent(&tetrahedral, &tetrahedral_prep);

    for code in [catalog::steane(), catalog::shor()] {
        let serial = sweep_engine(1)
            .globally_optimize(&code)
            .unwrap_or_else(|e| panic!("{} with threads(1): {e}", code.name()));
        let parallel = sweep_engine(SWEEP_THREADS)
            .globally_optimize(&code)
            .unwrap_or_else(|e| panic!("{} with threads({SWEEP_THREADS}): {e}", code.name()));
        assert_eq!(
            protocol_fingerprint(&serial.protocol),
            protocol_fingerprint(&parallel.protocol),
            "{}: globally optimal protocols diverge across thread counts",
            code.name()
        );
        assert_eq!(
            serial.candidates_per_layer,
            parallel.candidates_per_layer,
            "{}: candidate enumeration diverges across thread counts",
            code.name()
        );
        assert_eq!(
            serial.explored,
            parallel.explored,
            "{}: explored aggregates diverge across thread counts",
            code.name()
        );
        assert_eq!(
            stages_fingerprint(&serial.stages),
            stages_fingerprint(&parallel.stages),
            "{}: per-stage statistics diverge across thread counts",
            code.name()
        );
        println!(
            "  globally_optimize {:<14} OK ({:?} candidates per layer)",
            code.name(),
            serial.candidates_per_layer
        );
    }

    // The speedup floor: full synthesis of the 15-qubit tetrahedral code,
    // best of `iters` per thread count.
    let t1 = best_synthesis_time(&tetrahedral, &tetrahedral_prep, 1, iters);
    let tn = best_synthesis_time(&tetrahedral, &tetrahedral_prep, SWEEP_THREADS, iters);
    let speedup = t1.as_secs_f64() / tn.as_secs_f64();
    println!(
        "{} full synthesis: threads(1) {t1:.2?} vs threads({SWEEP_THREADS}) {tn:.2?} ({speedup:.2}x)",
        tetrahedral.name()
    );
    if let Some(min_speedup) = check {
        if cores < 2 {
            // A parallel speedup cannot exist on one core — the equivalence
            // checks above are the meaningful signal on such hosts, and a
            // hard gate would only measure scheduling overhead.
            println!(
                "check skipped: only {cores} core available, parallel speedup is not measurable on this host"
            );
        } else if speedup < min_speedup {
            eprintln!(
                "FAIL: parallel speedup {speedup:.2}x on {} is below the required {min_speedup:.2}x",
                tetrahedral.name()
            );
            std::process::exit(1);
        } else {
            println!("check passed: {speedup:.2}x >= {min_speedup:.2}x");
        }
    }
}

/// Asserts that serial and `SWEEP_THREADS`-worker synthesis of `code` agree
/// on everything except wall-clock times.
fn assert_synthesize_equivalent(code: &CssCode, prep: &dftsp::PrepCircuit) {
    let serial = sweep_engine(1)
        .synthesize_with_prep(code, prep.clone())
        .unwrap_or_else(|e| panic!("{} with threads(1): {e}", code.name()));
    let parallel = sweep_engine(SWEEP_THREADS)
        .synthesize_with_prep(code, prep.clone())
        .unwrap_or_else(|e| panic!("{} with threads({SWEEP_THREADS}): {e}", code.name()));
    assert_eq!(
        protocol_fingerprint(&serial.protocol),
        protocol_fingerprint(&parallel.protocol),
        "{}: synthesized protocols diverge across thread counts",
        code.name()
    );
    assert_eq!(
        stages_fingerprint(&serial.stages),
        stages_fingerprint(&parallel.stages),
        "{}: per-stage statistics diverge across thread counts",
        code.name()
    );
    assert_eq!(
        serial.sat_totals(),
        parallel.sat_totals(),
        "{}: merged SAT totals diverge across thread counts",
        code.name()
    );
    println!(
        "  synthesize        {:<14} OK ({} stages)",
        code.name(),
        serial.stages.len()
    );
}

fn sweep_engine(threads: usize) -> SynthesisEngine {
    SynthesisEngine::builder().threads(threads).build()
}

fn best_synthesis_time(
    code: &CssCode,
    prep: &dftsp::PrepCircuit,
    threads: usize,
    iters: u32,
) -> Duration {
    let engine = sweep_engine(threads);
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let start = Instant::now();
        engine
            .synthesize_with_prep(code, prep.clone())
            .unwrap_or_else(|e| panic!("{} with threads({threads}): {e}", code.name()));
        best = best.min(start.elapsed());
    }
    best
}

/// Bit-for-bit structural identity of a protocol: the `Debug` rendering
/// covers the preparation circuit and every layer, gadget, branch, recovery.
fn protocol_fingerprint(protocol: &dftsp::DeterministicProtocol) -> String {
    format!("{:?}|{:?}", protocol.prep.circuit, protocol.layers)
}

/// Everything in a stage list except the wall-clock times.
fn stages_fingerprint(stages: &[dftsp::StageReport]) -> String {
    stages
        .iter()
        .map(|s| format!("{:?}|{:?}|{}", s.stage, s.sat, s.branches))
        .collect::<Vec<_>>()
        .join(";")
}

struct MicroResult {
    name: String,
    tuned: Duration,
    reference: Duration,
}

/// A buildable solver-only instance: clauses loaded into a fresh solver with
/// the given configuration.
type MicroBuilder = Box<dyn Fn(SolverConfig) -> Solver>;

/// Solver-only instances in the shape of the synthesis encodings: the
/// unsatisfiable pigeonhole family (clause-learning-heavy) and random parity
/// chains under a cardinality bound (the verification/correction formula
/// shape).
fn micro_instances(quick: bool) -> Vec<(String, MicroBuilder)> {
    let mut instances = vec![(
        "pigeonhole-7".to_string(),
        Box::new(move |config| pigeonhole(config, 7)) as MicroBuilder,
    )];
    if !quick {
        // The larger parity/cardinality instance takes several seconds on
        // the reference solver — full-trajectory runs only.
        instances.push((
            "parity-card-48".to_string(),
            Box::new(move |config| parity_cardinality(config, 48, 24, 16)) as MicroBuilder,
        ));
    }
    instances
}

fn best_micro_time(build: &MicroBuilder, config: SolverConfig, iters: u32) -> Duration {
    let mut best = Duration::MAX;
    for _ in 0..iters {
        let mut solver = build(config);
        let start = Instant::now();
        let _ = solver.solve();
        best = best.min(start.elapsed());
    }
    best
}

/// Random XOR chains plus a cardinality bound — the shape of the
/// verification/correction encodings.
fn parity_cardinality(
    config: SolverConfig,
    bits: usize,
    parity_rows: usize,
    bound: usize,
) -> Solver {
    let mut solver = Solver::with_config(config);
    let vars: Vec<Lit> = (0..bits).map(|_| Lit::pos(solver.new_var())).collect();
    let mut enc = Encoder::new(&mut solver);
    let mut state = 0x1234_5678u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for row in 0..parity_rows {
        let members: Vec<Lit> = vars.iter().copied().filter(|_| next() % 2 == 0).collect();
        if !members.is_empty() {
            enc.add_parity(&members, row % 2 == 0);
        }
    }
    enc.at_most_k(&vars, bound);
    solver
}

fn flag_value(args: &[String], flag: &str) -> Option<String> {
    args.iter()
        .position(|a| a == flag)
        .and_then(|i| args.get(i + 1))
        .cloned()
}

/// Runs the SAT-driven pipeline of `code` around the shared `prep` on
/// `backend`, `iters` times; returns the best wall time, the SAT totals, and
/// the per-stage breakdown of the best run.
fn run_config(
    code: &CssCode,
    prep: &dftsp::PrepCircuit,
    backend: BackendChoice,
    iters: u32,
    threads: Option<usize>,
) -> (Duration, SatStats, StageBreakdown) {
    let mut builder = SynthesisEngine::builder().solver(backend);
    if let Some(threads) = threads {
        builder = builder.threads(threads);
    }
    let engine = builder.build();
    let mut best: Option<(Duration, SatStats, StageBreakdown)> = None;
    for _ in 0..iters {
        let start = Instant::now();
        let report = engine
            .synthesize_with_prep(code, prep.clone())
            .unwrap_or_else(|e| panic!("{} on {backend}: {e}", code.name()));
        let elapsed = start.elapsed();
        if best.as_ref().is_none_or(|(t, _, _)| elapsed < *t) {
            let stages = report
                .stages
                .iter()
                .map(|s| (s.stage.to_string(), s.time, s.sat))
                .collect();
            best = Some((elapsed, report.sat_totals(), stages));
        }
    }
    best.expect("at least one iteration ran")
}

fn stats_json(stats: &SatStats) -> String {
    format!(
        "{{\"calls\": {}, \"warm_queries\": {}, \"decisions\": {}, \"propagations\": {}, \"conflicts\": {}, \"learned_clauses\": {}, \"minimized_literals\": {}, \"reduced_clauses\": {}, \"peak_clause_db\": {}, \"restarts\": {}, \"variables\": {}, \"clauses\": {}, \"retained_clauses\": {}}}",
        stats.calls,
        stats.warm_queries,
        stats.decisions,
        stats.propagations,
        stats.conflicts,
        stats.learned_clauses,
        stats.minimized_literals,
        stats.reduced_clauses,
        stats.peak_clause_db,
        stats.restarts,
        stats.variables,
        stats.clauses,
        stats.retained_clauses,
    )
}

/// Renders the per-lane portfolio attribution of one run.
fn portfolio_json(stats: &SatStats) -> String {
    let p = &stats.portfolio;
    let lanes: Vec<String> = dftsp::PortfolioLane::ALL
        .iter()
        .map(|&lane| {
            let l = p.lane(lane);
            format!(
                "{{\"lane\": \"{}\", \"wins\": {}, \"losses\": {}, \"cancelled_conflicts\": {}, \"time_us\": {}}}",
                lane.name(),
                l.wins,
                l.losses,
                l.cancelled_conflicts,
                l.time_us
            )
        })
        .collect();
    format!(
        "{{\"races\": {}, \"solo\": {}, \"lanes\": [{}]}}",
        p.races,
        p.solo,
        lanes.join(", ")
    )
}

#[allow(clippy::too_many_arguments)]
fn render_json(
    quick: bool,
    iters: u32,
    results: &[CodeResult],
    micro: &[MicroResult],
    total_tuned: Duration,
    total_reference: Duration,
    total_portfolio: Duration,
    speedup: f64,
    overall: f64,
) -> String {
    let mut out = String::new();
    out.push_str("{\n");
    out.push_str("  \"bench\": \"satbench\",\n");
    out.push_str(&format!(
        "  \"mode\": \"{}\",\n",
        if quick { "quick" } else { "d3-catalog" }
    ));
    out.push_str(&format!("  \"iters\": {iters},\n"));
    out.push_str(&format!(
        "  \"total_tuned_us\": {},\n  \"total_reference_us\": {},\n  \"total_portfolio_us\": {},\n  \"speedup\": {speedup:.4},\n  \"overall_speedup\": {overall:.4},\n",
        total_tuned.as_micros(),
        total_reference.as_micros(),
        total_portfolio.as_micros()
    ));
    out.push_str("  \"codes\": [\n");
    for (i, r) in results.iter().enumerate() {
        out.push_str("    {\n");
        out.push_str(&format!("      \"code\": \"{}\",\n", r.name));
        out.push_str(&format!(
            "      \"tuned_us\": {},\n      \"tuned_serial_us\": {},\n      \"parallel_speedup\": {:.4},\n      \"reference_us\": {},\n      \"portfolio_us\": {},\n      \"speedup\": {:.4},\n      \"portfolio_vs_best_single\": {:.4},\n",
            r.tuned.as_micros(),
            r.tuned_serial.as_micros(),
            r.tuned_serial.as_secs_f64() / r.tuned.as_secs_f64(),
            r.reference.as_micros(),
            r.portfolio.as_micros(),
            r.reference.as_secs_f64() / r.tuned.as_secs_f64(),
            r.portfolio.as_secs_f64() / r.tuned.min(r.reference).as_secs_f64()
        ));
        out.push_str(&format!("      \"tuned\": {},\n", stats_json(&r.tuned_sat)));
        out.push_str(&format!(
            "      \"reference\": {},\n",
            stats_json(&r.reference_sat)
        ));
        out.push_str(&format!(
            "      \"portfolio\": {},\n",
            portfolio_json(&r.portfolio_sat)
        ));
        out.push_str("      \"stages\": [\n");
        for (j, (name, time, sat)) in r.stages.iter().enumerate() {
            out.push_str(&format!(
                "        {{\"stage\": \"{name}\", \"us\": {}, \"serial_us\": {}, \"sat\": {}}}{}\n",
                time.as_micros(),
                r.serial_stage_times[j].as_micros(),
                stats_json(sat),
                if j + 1 < r.stages.len() { "," } else { "" }
            ));
        }
        out.push_str("      ]\n");
        out.push_str(&format!(
            "    }}{}\n",
            if i + 1 < results.len() { "," } else { "" }
        ));
    }
    out.push_str("  ],\n");
    out.push_str("  \"microbench\": [\n");
    for (i, m) in micro.iter().enumerate() {
        out.push_str(&format!(
            "    {{\"name\": \"{}\", \"tuned_us\": {}, \"reference_us\": {}, \"speedup\": {:.4}}}{}\n",
            m.name,
            m.tuned.as_micros(),
            m.reference.as_micros(),
            m.reference.as_secs_f64() / m.tuned.as_secs_f64(),
            if i + 1 < micro.len() { "," } else { "" }
        ));
    }
    out.push_str("  ]\n}\n");
    out
}
