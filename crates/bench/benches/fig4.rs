//! Criterion benchmark for the Fig. 4 pipeline: building the subset-sampling
//! estimate and recombining it into a logical-error-rate curve.

use criterion::{criterion_group, criterion_main, Criterion};
use dftsp::SynthesisEngine;
use dftsp_noise::{default_physical_rates, logical_error_curve, SubsetConfig, SubsetEstimate};

fn bench_fig4(c: &mut Criterion) {
    let steane = SynthesisEngine::default()
        .synthesize(&dftsp_code::catalog::steane())
        .expect("synthesis succeeds")
        .protocol;
    let config = SubsetConfig {
        max_faults: 2,
        samples_per_stratum: 100,
    };

    let mut group = c.benchmark_group("fig4_simulation");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.bench_function("subset_estimate/Steane", |b| {
        b.iter(|| SubsetEstimate::build(&steane, &config, 1))
    });
    let rates = default_physical_rates(3);
    group.bench_function("full_curve/Steane", |b| {
        b.iter(|| logical_error_curve(&steane, &rates, &config, 7))
    });
    group.finish();
}

criterion_group!(benches, bench_fig4);
criterion_main!(benches);
