//! Criterion benchmarks of the protocol executor and the noise-simulation
//! primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftsp::{execute, NoFaults, SynthesisEngine};
use dftsp_noise::{monte_carlo, NoiseParams, PerfectDecoder};

fn bench_executor(c: &mut Criterion) {
    let engine = SynthesisEngine::default();
    let codes = [
        dftsp_code::catalog::steane(),
        dftsp_code::catalog::surface3(),
    ];
    let protocols: Vec<_> = codes
        .iter()
        .zip(engine.synthesize_all(&codes))
        .map(|(code, report)| {
            let report = report.expect("synthesis succeeds");
            (code.name().to_string(), report.protocol)
        })
        .collect();

    let mut group = c.benchmark_group("protocol_execution");
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, protocol) in &protocols {
        group.bench_with_input(BenchmarkId::new("noiseless", name), protocol, |b, p| {
            b.iter(|| execute(p, &mut NoFaults))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fault_tolerance_check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    let (name, steane) = &protocols[0];
    group.bench_with_input(BenchmarkId::new("exhaustive", name), steane, |b, p| {
        b.iter(|| dftsp::check_fault_tolerance(p))
    });
    group.finish();

    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.bench_function(format!("200_runs_p0.01/{name}"), |b| {
        b.iter(|| monte_carlo(steane, NoiseParams::e1_1(0.01), 200, 3))
    });
    group.bench_function(format!("decoder_construction/{name}"), |b| {
        b.iter(|| PerfectDecoder::for_protocol(steane))
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
