//! Criterion benchmarks of the protocol executor and the noise-simulation
//! primitives.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftsp::{execute, synthesize_protocol, NoFaults, SynthesisOptions};
use dftsp_noise::{monte_carlo, NoiseParams, PerfectDecoder};

fn bench_executor(c: &mut Criterion) {
    let protocols: Vec<_> = [dftsp_code::catalog::steane(), dftsp_code::catalog::surface3()]
        .into_iter()
        .map(|code| {
            let protocol = synthesize_protocol(&code, &SynthesisOptions::default())
                .expect("synthesis succeeds");
            (code.name().to_string(), protocol)
        })
        .collect();

    let mut group = c.benchmark_group("protocol_execution");
    group.measurement_time(std::time::Duration::from_secs(5));
    for (name, protocol) in &protocols {
        group.bench_with_input(BenchmarkId::new("noiseless", name), protocol, |b, p| {
            b.iter(|| execute(p, &mut NoFaults))
        });
    }
    group.finish();

    let mut group = c.benchmark_group("fault_tolerance_check");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    let (name, steane) = &protocols[0];
    group.bench_with_input(BenchmarkId::new("exhaustive", name), steane, |b, p| {
        b.iter(|| dftsp::check_fault_tolerance(p))
    });
    group.finish();

    let mut group = c.benchmark_group("monte_carlo");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    group.bench_function(format!("200_runs_p0.01/{name}"), |b| {
        b.iter(|| monte_carlo(steane, NoiseParams::e1_1(0.01), 200, 3))
    });
    group.bench_function(format!("decoder_construction/{name}"), |b| {
        b.iter(|| PerfectDecoder::for_protocol(steane))
    });
    group.finish();
}

criterion_group!(benches, bench_executor);
criterion_main!(benches);
