//! Criterion benchmarks of the individual synthesis steps: state-preparation
//! circuits, verification synthesis and correction-circuit synthesis.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftsp::correct::{synthesize_correction, CorrectionOptions, CorrectionProblem};
use dftsp::prep::{synthesize_prep, PrepMethod, PrepOptions};
use dftsp::verify::{synthesize_verification, VerificationOptions};
use dftsp::{BackendChoice, SynthesisEngine, ZeroStateContext};
use dftsp_code::catalog;
use dftsp_f2::BitVec;
use dftsp_pauli::PauliKind;

fn bench_prep(c: &mut Criterion) {
    let mut group = c.benchmark_group("prep_synthesis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(10));
    for code in [catalog::steane(), catalog::surface3()] {
        group.bench_with_input(
            BenchmarkId::new("heuristic", code.name()),
            &code,
            |b, code| b.iter(|| synthesize_prep(code, &PrepOptions::default())),
        );
    }
    let steane = catalog::steane();
    group.bench_function("optimal/Steane", |b| {
        b.iter(|| synthesize_prep(&steane, &PrepOptions::with_method(PrepMethod::Optimal)))
    });
    group.finish();
}

fn bench_verification(c: &mut Criterion) {
    let ctx = ZeroStateContext::new(catalog::steane());
    let dangerous = vec![
        BitVec::from_indices(7, &[0, 1]),
        BitVec::from_indices(7, &[2, 3]),
        BitVec::from_indices(7, &[4, 5, 6]),
        BitVec::from_indices(7, &[1, 6]),
    ];
    let mut group = c.benchmark_group("verification_synthesis");
    group.sample_size(20);
    group.bench_function("steane_four_errors", |b| {
        b.iter(|| {
            synthesize_verification(
                ctx.measurable_group(PauliKind::X),
                &dangerous,
                &VerificationOptions::default(),
            )
            .expect("coverable")
        })
    });
    group.finish();
}

fn bench_correction(c: &mut Criterion) {
    let ctx = ZeroStateContext::new(catalog::steane());
    let problem = CorrectionProblem {
        target_weights: Vec::new(),
        errors: vec![
            BitVec::from_indices(7, &[0, 1]),
            BitVec::from_indices(7, &[2, 3]),
            BitVec::from_indices(7, &[4, 6]),
            BitVec::zeros(7),
            BitVec::unit(7, 5),
        ],
        measurable: ctx.measurable_group(PauliKind::X).clone(),
        reduction: ctx.reduction_group(PauliKind::X).clone(),
    };
    let mut group = c.benchmark_group("correction_synthesis");
    group.sample_size(20);
    group.bench_function("steane_five_error_branch", |b| {
        b.iter(|| synthesize_correction(&problem, &CorrectionOptions::default()).expect("solvable"))
    });
    group.finish();
}

fn bench_engine(c: &mut Criterion) {
    let steane = catalog::steane();
    let mut group = c.benchmark_group("engine_synthesis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    for backend in [BackendChoice::Cdcl, BackendChoice::DimacsLogging] {
        let engine = SynthesisEngine::builder().solver(backend).build();
        group.bench_with_input(
            BenchmarkId::new("full_pipeline/Steane", backend),
            &engine,
            |b, engine| b.iter(|| engine.synthesize(&steane).expect("synthesis succeeds")),
        );
    }
    group.finish();
}

criterion_group!(
    benches,
    bench_prep,
    bench_verification,
    bench_correction,
    bench_engine
);
criterion_main!(benches);
