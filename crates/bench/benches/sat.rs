//! Criterion benchmarks of the in-tree CDCL SAT solver on the constraint
//! families used by the synthesis encodings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftsp_sat::{Encoder, Lit, SolveResult, Solver};

/// Pigeonhole principle PHP(n+1, n): classic unsatisfiable cardinality
/// benchmark exercising clause learning.
fn pigeonhole(holes: usize) -> Solver {
    let pigeons = holes + 1;
    let mut solver = Solver::new();
    let vars: Vec<Vec<Lit>> = (0..pigeons)
        .map(|_| (0..holes).map(|_| Lit::pos(solver.new_var())).collect())
        .collect();
    let mut enc = Encoder::new(&mut solver);
    for row in &vars {
        enc.solver().add_clause(row.clone());
    }
    for hole in 0..holes {
        let column: Vec<Lit> = vars.iter().map(|row| row[hole]).collect();
        enc.at_most_one(&column);
    }
    solver
}

/// Random XOR chains plus a cardinality bound — the shape of the
/// verification/correction encodings.
fn parity_cardinality(bits: usize, parity_rows: usize, bound: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Lit> = (0..bits).map(|_| Lit::pos(solver.new_var())).collect();
    let mut enc = Encoder::new(&mut solver);
    let mut state = 0x1234_5678u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for row in 0..parity_rows {
        let members: Vec<Lit> = vars.iter().copied().filter(|_| next() % 2 == 0).collect();
        if !members.is_empty() {
            enc.add_parity(&members, row % 2 == 0);
        }
    }
    enc.at_most_k(&vars, bound);
    solver
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    for holes in [6usize, 7] {
        group.bench_with_input(
            BenchmarkId::new("pigeonhole", holes),
            &holes,
            |b, &holes| {
                b.iter(|| {
                    let mut solver = pigeonhole(holes);
                    assert_eq!(solver.solve(), SolveResult::Unsat);
                })
            },
        );
    }
    for bits in [24usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("parity_cardinality", bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    let mut solver = parity_cardinality(bits, bits / 2, bits / 3);
                    let _ = solver.solve();
                })
            },
        );
    }
    group.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
