//! Criterion benchmarks of the in-tree CDCL SAT solver on the constraint
//! families used by the synthesis encodings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use dftsp_bench::pigeonhole;
use dftsp_sat::{Encoder, Lit, SolveResult, Solver, SolverConfig};

/// Random XOR chains plus a cardinality bound — the shape of the
/// verification/correction encodings.
fn parity_cardinality(bits: usize, parity_rows: usize, bound: usize) -> Solver {
    let mut solver = Solver::new();
    let vars: Vec<Lit> = (0..bits).map(|_| Lit::pos(solver.new_var())).collect();
    let mut enc = Encoder::new(&mut solver);
    let mut state = 0x1234_5678u64;
    let mut next = || {
        state = state
            .wrapping_mul(6364136223846793005)
            .wrapping_add(1442695040888963407);
        (state >> 33) as usize
    };
    for row in 0..parity_rows {
        let members: Vec<Lit> = vars.iter().copied().filter(|_| next() % 2 == 0).collect();
        if !members.is_empty() {
            enc.add_parity(&members, row % 2 == 0);
        }
    }
    enc.at_most_k(&vars, bound);
    solver
}

fn bench_sat(c: &mut Criterion) {
    let mut group = c.benchmark_group("sat_solver");
    group.sample_size(20);
    group.measurement_time(std::time::Duration::from_secs(5));
    for holes in [6usize, 7] {
        group.bench_with_input(
            BenchmarkId::new("pigeonhole", holes),
            &holes,
            |b, &holes| {
                b.iter(|| {
                    let mut solver = pigeonhole(SolverConfig::default(), holes);
                    assert_eq!(solver.solve(), SolveResult::Unsat);
                })
            },
        );
    }
    for bits in [24usize, 40] {
        group.bench_with_input(
            BenchmarkId::new("parity_cardinality", bits),
            &bits,
            |b, &bits| {
                b.iter(|| {
                    let mut solver = parity_cardinality(bits, bits / 2, bits / 3);
                    let _ = solver.solve();
                })
            },
        );
    }
    group.finish();

    // Tuned hot path (VSIDS heap, LBD reduction, blockers, binary path,
    // recursive minimization) against the heuristics-disabled reference
    // configuration, on the learning-heavy pigeonhole family.
    let mut configs = c.benchmark_group("sat_solver_configs");
    configs.sample_size(20);
    configs.measurement_time(std::time::Duration::from_secs(5));
    for (name, config) in [
        ("tuned", SolverConfig::default()),
        ("reference", SolverConfig::reference()),
    ] {
        configs.bench_with_input(
            BenchmarkId::new(name, "pigeonhole8"),
            &config,
            |b, &config| {
                b.iter(|| {
                    let mut solver = pigeonhole(config, 8);
                    assert_eq!(solver.solve(), SolveResult::Unsat);
                })
            },
        );
    }
    configs.finish();
}

criterion_group!(benches, bench_sat);
criterion_main!(benches);
