//! Criterion benchmark regenerating Table I rows (end-to-end synthesis of the
//! deterministic protocol per catalog code).

use criterion::{criterion_group, criterion_main, Criterion};
use dftsp::PrepMethod;
use dftsp_bench::{synthesize_row, VerificationFlavor};

fn bench_table1_rows(c: &mut Criterion) {
    let mut group = c.benchmark_group("table1_synthesis");
    group.sample_size(10);
    group.measurement_time(std::time::Duration::from_secs(20));
    // One full row (the Steane code) keeps the bench affordable on a single
    // core; the other rows are produced by the `table1` binary.
    let steane = dftsp_code::catalog::steane();
    group.bench_function("heu_opt/Steane", |b| {
        b.iter(|| {
            synthesize_row(&steane, PrepMethod::Heuristic, VerificationFlavor::Optimal)
                .expect("synthesis succeeds")
        })
    });
    group.finish();
}

criterion_group!(benches, bench_table1_rows);
criterion_main!(benches);
