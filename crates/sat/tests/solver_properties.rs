//! Property-based and randomized stress tests for the SAT solver.

use dftsp_sat::{BackendChoice, Encoder, Lit, SatBackend, SolveResult, Solver, SolverConfig, Var};
use proptest::prelude::*;

/// A small random CNF formula described by clauses over `num_vars` variables.
#[derive(Debug, Clone)]
struct RandomCnf {
    num_vars: usize,
    clauses: Vec<Vec<(usize, bool)>>,
}

fn random_cnf(max_vars: usize, max_clauses: usize) -> impl Strategy<Value = RandomCnf> {
    (2..=max_vars).prop_flat_map(move |num_vars| {
        let clause = prop::collection::vec((0..num_vars, any::<bool>()), 1..=3);
        prop::collection::vec(clause, 1..=max_clauses)
            .prop_map(move |clauses| RandomCnf { num_vars, clauses })
    })
}

fn brute_force_sat(cnf: &RandomCnf) -> bool {
    (0..(1u64 << cnf.num_vars)).any(|mask| {
        cnf.clauses.iter().all(|clause| {
            clause
                .iter()
                .any(|&(v, positive)| ((mask >> v) & 1 == 1) == positive)
        })
    })
}

fn load(cnf: &RandomCnf) -> (Solver, Vec<Var>) {
    load_with(cnf, SolverConfig::default())
}

fn load_with(cnf: &RandomCnf, config: SolverConfig) -> (Solver, Vec<Var>) {
    let mut solver = Solver::with_config(config);
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| solver.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, positive)| Lit::with_polarity(vars[v], positive))
            .collect();
        solver.add_clause(lits);
    }
    (solver, vars)
}

/// Loads a random CNF into any [`SatBackend`] instantiation.
fn load_backend(cnf: &RandomCnf, backend: &mut dyn SatBackend) -> Vec<Var> {
    let vars: Vec<Var> = (0..cnf.num_vars).map(|_| backend.new_var()).collect();
    for clause in &cnf.clauses {
        let lits: Vec<Lit> = clause
            .iter()
            .map(|&(v, positive)| Lit::with_polarity(vars[v], positive))
            .collect();
        backend.add_clause(&lits);
    }
    vars
}

/// The tuned heuristics with the clause-database reduction forced to run
/// after every single conflict — maximal stress on the locked-clause
/// protection and the watch/reason remapping.
fn aggressive_config() -> SolverConfig {
    SolverConfig {
        reduce_base: 1,
        reduce_increment: 0,
        ..SolverConfig::default()
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// The CDCL result always agrees with exhaustive enumeration.
    #[test]
    fn agrees_with_brute_force(cnf in random_cnf(10, 40)) {
        let expected = brute_force_sat(&cnf);
        let (mut solver, vars) = load(&cnf);
        let result = solver.solve();
        prop_assert_eq!(result == SolveResult::Sat, expected);
        if result == SolveResult::Sat {
            let model = solver.model().expect("model exists after SAT");
            for clause in &cnf.clauses {
                prop_assert!(clause.iter().any(|&(v, positive)| model.value(vars[v]) == positive));
            }
        }
    }

    /// The heap-based, database-reducing, clause-minimizing tuned solver and
    /// the heuristics-disabled reference configuration always agree on the
    /// SAT/UNSAT verdict, and both agree with brute force. The tuned side
    /// runs with reduction after every conflict so the clause-database
    /// machinery is exercised even on small formulas.
    #[test]
    fn tuned_heuristics_agree_with_reference(cnf in random_cnf(10, 40)) {
        let expected = brute_force_sat(&cnf);
        let (mut tuned, tuned_vars) = load_with(&cnf, aggressive_config());
        let (mut reference, reference_vars) = load_with(&cnf, SolverConfig::reference());
        let tuned_result = tuned.solve();
        let reference_result = reference.solve();
        prop_assert_eq!(tuned_result, reference_result);
        prop_assert_eq!(tuned_result == SolveResult::Sat, expected);
        // Both models (possibly different) satisfy every clause.
        for (solver, vars) in [(&tuned, &tuned_vars), (&reference, &reference_vars)] {
            if tuned_result == SolveResult::Sat {
                let model = solver.model().expect("model exists after SAT");
                for clause in &cnf.clauses {
                    prop_assert!(
                        clause.iter().any(|&(v, positive)| model.value(vars[v]) == positive)
                    );
                }
            }
        }
        prop_assert_eq!(reference.stats().reduced_clauses, 0);
        prop_assert_eq!(reference.stats().minimized_literals, 0);
    }

    /// Verdict agreement survives assumption-based incremental reuse: the
    /// same query sequence on a constantly-reducing tuned solver and on the
    /// reference solver returns identical verdict sequences.
    #[test]
    fn reduction_is_sound_under_assumptions(cnf in random_cnf(8, 30), m0: u64, m1: u64, m2: u64) {
        let (mut tuned, tuned_vars) = load_with(&cnf, aggressive_config());
        let (mut reference, reference_vars) = load_with(&cnf, SolverConfig::reference());
        for mask in [m0, m1, m2] {
            // Assume a random subset of variables (one polarity bit each).
            let pick = |vars: &[Var]| -> Vec<Lit> {
                vars.iter()
                    .enumerate()
                    .filter(|(i, _)| (mask >> (2 * i)) & 1 == 1)
                    .map(|(i, &v)| Lit::with_polarity(v, (mask >> (2 * i + 1)) & 1 == 1))
                    .collect()
            };
            let tuned_result = tuned.solve_with_assumptions(&pick(&tuned_vars));
            let reference_result = reference.solve_with_assumptions(&pick(&reference_vars));
            prop_assert_eq!(tuned_result, reference_result, "mask {}", mask);
        }
    }

    /// Solving twice (incrementally) gives the same answer.
    #[test]
    fn idempotent_resolving(cnf in random_cnf(8, 30)) {
        let (mut solver, _) = load(&cnf);
        let first = solver.solve();
        let second = solver.solve();
        prop_assert_eq!(first, second);
    }

    /// Under assumptions fixing every variable, the solver agrees with direct
    /// evaluation of the formula.
    #[test]
    fn full_assumption_queries(cnf in random_cnf(8, 25), mask: u64) {
        let (mut solver, vars) = load(&cnf);
        let assumptions: Vec<Lit> = vars
            .iter()
            .enumerate()
            .map(|(i, &v)| Lit::with_polarity(v, (mask >> i) & 1 == 1))
            .collect();
        let expected = cnf.clauses.iter().all(|clause| {
            clause.iter().any(|&(v, positive)| ((mask >> v) & 1 == 1) == positive)
        });
        let got = solver.solve_with_assumptions(&assumptions) == SolveResult::Sat;
        prop_assert_eq!(got, expected);
    }

    /// Cardinality constraints count correctly against brute force.
    #[test]
    fn cardinality_encoding_is_exact(n in 1usize..7, k in 0usize..7) {
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
        {
            let mut enc = Encoder::new(&mut solver);
            enc.at_most_k(&lits, k);
        }
        for mask in 0..(1u64 << n) {
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| Lit::with_polarity(lits[i].var(), (mask >> i) & 1 == 1))
                .collect();
            let expected = (mask.count_ones() as usize) <= k;
            let got = solver.solve_with_assumptions(&assumptions) == SolveResult::Sat;
            prop_assert_eq!(got, expected, "n={} k={} mask={}", n, k, mask);
        }
    }

    /// Parity constraints hold exactly.
    #[test]
    fn parity_encoding_is_exact(n in 1usize..7, parity: bool) {
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
        {
            let mut enc = Encoder::new(&mut solver);
            enc.add_parity(&lits, parity);
        }
        for mask in 0..(1u64 << n) {
            let assumptions: Vec<Lit> = (0..n)
                .map(|i| Lit::with_polarity(lits[i].var(), (mask >> i) & 1 == 1))
                .collect();
            let expected = (mask.count_ones() % 2 == 1) == parity;
            let got = solver.solve_with_assumptions(&assumptions) == SolveResult::Sat;
            prop_assert_eq!(got, expected);
        }
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Guarded cardinality bounds are genuinely retractable: with all `n`
    /// literals forced true, an at-most-`k < n` bound behind a guard is UNSAT
    /// while the guard is assumed, and releasing the guard restores
    /// satisfiability on the same live solver.
    #[test]
    fn release_guard_retracts_bounds(
        shape in (2..8usize).prop_flat_map(|n| (0..n).prop_map(move |k| (n, k)))
    ) {
        use dftsp_sat::SatBackend;

        let (n, k) = shape;
        let mut solver = Solver::new();
        let lits: Vec<Lit> = (0..n).map(|_| Lit::pos(solver.new_var())).collect();
        for &l in &lits {
            solver.add_clause([l]);
        }
        let guard = {
            let mut enc = Encoder::new(&mut solver);
            enc.at_most_k_retractable(&lits, k)
        };
        // Active bound: UNSAT under the guard, SAT without it.
        prop_assert_eq!(solver.solve_with_assumptions(&[guard]), SolveResult::Unsat);
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        // Released bound: SAT even though the same solver kept its learned
        // clauses; re-assuming the dead guard now contradicts its release.
        prop_assert!(solver.release_guard(guard));
        prop_assert_eq!(solver.solve(), SolveResult::Sat);
        let model = solver.model().expect("model after SAT");
        for &l in &lits {
            prop_assert!(model.lit_value(l));
        }
        prop_assert_eq!(solver.solve_with_assumptions(&[guard]), SolveResult::Unsat);
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(200))]

    /// Portfolio cross-check: the tuned CDCL solver, the heuristics-disabled
    /// reference configuration and the independent screwsat-style engine all
    /// agree with each other and with exhaustive enumeration — on plain
    /// queries and under random assumption sets — and every SAT model each
    /// engine produces satisfies the formula.
    #[test]
    fn all_engines_agree_on_random_cnfs(cnf in random_cnf(10, 40), mask: u64) {
        let expected = brute_force_sat(&cnf);
        let choices = [
            BackendChoice::Cdcl,
            BackendChoice::CdclReference,
            BackendChoice::Screwsat,
        ];
        let mut engines: Vec<(Box<dyn SatBackend>, Vec<Var>)> = choices
            .iter()
            .map(|choice| {
                let mut backend = choice.instantiate();
                let vars = load_backend(&cnf, backend.as_mut());
                (backend, vars)
            })
            .collect();
        for (backend, vars) in &mut engines {
            let result = backend.solve();
            prop_assert_eq!(
                result == SolveResult::Sat,
                expected,
                "engine {} disagrees with brute force",
                backend.name()
            );
            if result == SolveResult::Sat {
                let model = backend.model().expect("model exists after SAT");
                for clause in &cnf.clauses {
                    prop_assert!(
                        clause.iter().any(|&(v, positive)| model.value(vars[v]) == positive),
                        "engine {} returned a falsifying model",
                        backend.name()
                    );
                }
            }
        }
        // Assumption queries: fix a random subset of variables and compare
        // the verdicts pairwise (incremental reuse after the plain query).
        let pick = |vars: &[Var]| -> Vec<Lit> {
            vars.iter()
                .enumerate()
                .filter(|(i, _)| (mask >> (2 * i)) & 1 == 1)
                .map(|(i, &v)| Lit::with_polarity(v, (mask >> (2 * i + 1)) & 1 == 1))
                .collect()
        };
        let verdicts: Vec<SolveResult> = engines
            .iter_mut()
            .map(|(backend, vars)| backend.solve_with_assumptions(&pick(vars)))
            .collect();
        prop_assert_eq!(verdicts[0], verdicts[1]);
        prop_assert_eq!(verdicts[0], verdicts[2]);
    }

    /// The checked portfolio (which internally panics on member disagreement)
    /// agrees with brute force — running it at all is the cross-check.
    #[test]
    fn checked_portfolio_agrees_with_brute_force(cnf in random_cnf(8, 30)) {
        let expected = brute_force_sat(&cnf);
        let mut backend = BackendChoice::portfolio_checked().instantiate();
        let vars = load_backend(&cnf, backend.as_mut());
        let result = backend.solve();
        prop_assert_eq!(result == SolveResult::Sat, expected);
        if result == SolveResult::Sat {
            let model = backend.model().expect("model exists after SAT");
            for clause in &cnf.clauses {
                prop_assert!(
                    clause.iter().any(|&(v, positive)| model.value(vars[v]) == positive)
                );
            }
        }
    }
}

/// Larger deterministic stress test: random 3-SAT near the phase transition.
#[test]
fn random_3sat_stress() {
    use rand::prelude::*;
    let mut rng = StdRng::seed_from_u64(7);
    for _ in 0..10 {
        let n = 30usize;
        let m = (4.0 * n as f64) as usize;
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..n).map(|_| solver.new_var()).collect();
        for _ in 0..m {
            let clause: Vec<Lit> = (0..3)
                .map(|_| Lit::with_polarity(vars[rng.gen_range(0..n)], rng.gen()))
                .collect();
            solver.add_clause(clause);
        }
        // The instance may be SAT or UNSAT; the point is that the solver
        // terminates and, when SAT, produces a model (checked internally by
        // the model() contract).
        let result = solver.solve();
        if result == SolveResult::Sat {
            assert!(solver.model().is_some());
        } else {
            assert!(solver.model().is_none());
        }
    }
}
