//! Pluggable SAT backends.
//!
//! The synthesis pipeline treats the SAT solver as an injectable component:
//! everything it needs is captured by the [`SatBackend`] trait
//! (`new_var`/`add_clause`/`solve_with_assumptions`/`model`/`stats`), so the
//! encodings in [`crate::Encoder`] and the synthesis code in `dftsp` are
//! written once and run against any implementation. Five backends ship
//! in-tree:
//!
//! * the CDCL [`Solver`] itself with the tuned hot path (the default),
//! * the same solver with every heuristic disabled
//!   ([`crate::SolverConfig::reference`], selected via
//!   [`BackendChoice::CdclReference`]) — the cross-checking and benchmarking
//!   baseline,
//! * [`crate::ScrewSolver`], an independent second CDCL implementation
//!   sharing no code with [`Solver`] (selected via
//!   [`BackendChoice::Screwsat`]) — disagreement between the two engines is
//!   meaningful evidence of a bug,
//! * [`crate::PortfolioBackend`], which races or cross-checks several of the
//!   above per query ([`BackendChoice::Portfolio`]), and
//! * [`DimacsLoggingBackend`], an instrumented wrapper that records every
//!   clause and query, can export the accumulated formula as DIMACS CNF for
//!   inspection or cross-checking against external solvers, and re-validates
//!   every satisfying model against the recorded clauses.

use crate::dimacs::Cnf;
use crate::portfolio::{PortfolioBackend, PortfolioConfig, PortfolioStats};
use crate::{Lit, Model, ScrewSolver, SolveResult, Solver, SolverStats, Var};

/// Abstract interface of an incremental SAT solver.
///
/// The trait is object safe, so callers can select a backend at runtime via
/// [`BackendChoice`] and work with `Box<dyn SatBackend>`. `Send` is a
/// supertrait: every backend is plain owned data, and the engine's fan-out
/// moves live sessions (e.g. warm verification ladders probing sibling
/// bounds) across scoped worker threads.
pub trait SatBackend: Send {
    /// Short human-readable backend name (used in statistics reports).
    fn name(&self) -> &'static str;

    /// Allocates a fresh variable.
    fn new_var(&mut self) -> Var;

    /// Number of allocated variables.
    fn num_vars(&self) -> usize;

    /// Number of problem clauses added so far.
    fn num_clauses(&self) -> usize;

    /// Adds a clause; returns `false` if the formula became trivially
    /// unsatisfiable.
    fn add_clause(&mut self, lits: &[Lit]) -> bool;

    /// Solves under the given assumption literals.
    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult;

    /// Solves with a conflict budget; `None` means the budget was exhausted
    /// before a result was established.
    fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult>;

    /// The model of the most recent satisfiable query, if any.
    fn model(&self) -> Option<&Model>;

    /// Cumulative search statistics.
    fn stats(&self) -> SolverStats;

    /// Solves without assumptions.
    fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Allocates a fresh *guard* (selector) literal.
    ///
    /// A guard is an ordinary variable by a different name: constraints
    /// encoded as `¬guard ∨ …` only apply to queries that assume the guard,
    /// which makes them retractable. Passing the guard as an assumption to
    /// [`SatBackend::solve_with_assumptions`] activates the constraints;
    /// [`SatBackend::release_guard`] retires them permanently.
    fn new_guard(&mut self) -> Lit {
        Lit::pos(self.new_var())
    }

    /// Permanently releases a guard: the clauses encoded behind it become
    /// satisfied and the solver may simplify them away. Returns `false` if
    /// the formula became trivially unsatisfiable (only possible if the
    /// guard was previously forced true).
    fn release_guard(&mut self, guard: Lit) -> bool {
        self.add_clause(&[!guard])
    }

    /// Per-lane portfolio attribution, for backends that multiplex several
    /// engines ([`crate::PortfolioBackend`]); `None` for single-engine
    /// backends.
    fn portfolio_stats(&self) -> Option<PortfolioStats> {
        None
    }
}

macro_rules! impl_backend_delegate {
    ($ty:ty) => {
        impl<B: SatBackend + ?Sized> SatBackend for $ty {
            fn name(&self) -> &'static str {
                (**self).name()
            }
            fn new_var(&mut self) -> Var {
                (**self).new_var()
            }
            fn num_vars(&self) -> usize {
                (**self).num_vars()
            }
            fn num_clauses(&self) -> usize {
                (**self).num_clauses()
            }
            fn add_clause(&mut self, lits: &[Lit]) -> bool {
                (**self).add_clause(lits)
            }
            fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
                (**self).solve_with_assumptions(assumptions)
            }
            fn solve_limited(
                &mut self,
                assumptions: &[Lit],
                max_conflicts: u64,
            ) -> Option<SolveResult> {
                (**self).solve_limited(assumptions, max_conflicts)
            }
            fn model(&self) -> Option<&Model> {
                (**self).model()
            }
            fn stats(&self) -> SolverStats {
                (**self).stats()
            }
            fn new_guard(&mut self) -> Lit {
                (**self).new_guard()
            }
            fn release_guard(&mut self, guard: Lit) -> bool {
                (**self).release_guard(guard)
            }
            fn portfolio_stats(&self) -> Option<PortfolioStats> {
                (**self).portfolio_stats()
            }
        }
    };
}

impl_backend_delegate!(&mut B);
impl_backend_delegate!(Box<B>);

impl SatBackend for Solver {
    fn name(&self) -> &'static str {
        if self.config().is_reference() {
            "cdcl-ref"
        } else {
            "cdcl"
        }
    }

    fn new_var(&mut self) -> Var {
        Solver::new_var(self)
    }

    fn num_vars(&self) -> usize {
        Solver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        Solver::num_clauses(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        Solver::add_clause(self, lits.iter().copied())
    }

    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        Solver::solve_with_assumptions(self, assumptions)
    }

    fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        Solver::solve_limited(self, assumptions, max_conflicts)
    }

    fn model(&self) -> Option<&Model> {
        Solver::model(self)
    }

    fn stats(&self) -> SolverStats {
        Solver::stats(self)
    }
}

/// One recorded query of a [`DimacsLoggingBackend`].
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct QueryRecord {
    /// The assumption literals of the query.
    pub assumptions: Vec<Lit>,
    /// The query result (`None` = conflict budget exhausted).
    pub result: Option<SolveResult>,
    /// Conflict budget of the query, if one was set.
    pub max_conflicts: Option<u64>,
}

/// Instrumented backend wrapper: records the full formula and query history,
/// exports DIMACS CNF, and cross-checks every model it hands out.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{DimacsLoggingBackend, Lit, SatBackend, SolveResult};
///
/// let mut backend = DimacsLoggingBackend::default();
/// let a = backend.new_var();
/// let b = backend.new_var();
/// backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// backend.add_clause(&[Lit::neg(a)]);
/// assert_eq!(backend.solve(), SolveResult::Sat);
/// let dimacs = backend.to_cnf().to_dimacs();
/// assert!(dimacs.starts_with("p cnf 2 2"));
/// assert_eq!(backend.queries().len(), 1);
/// ```
#[derive(Debug)]
pub struct DimacsLoggingBackend<B: SatBackend = Solver> {
    inner: B,
    clauses: Vec<Vec<Lit>>,
    queries: Vec<QueryRecord>,
    check_models: bool,
}

impl Default for DimacsLoggingBackend<Solver> {
    fn default() -> Self {
        DimacsLoggingBackend::wrapping(Solver::new())
    }
}

impl<B: SatBackend> DimacsLoggingBackend<B> {
    /// Wraps an existing backend.
    pub fn wrapping(inner: B) -> Self {
        DimacsLoggingBackend {
            inner,
            clauses: Vec::new(),
            queries: Vec::new(),
            check_models: true,
        }
    }

    /// Enables or disables model cross-checking (enabled by default).
    pub fn check_models(mut self, check: bool) -> Self {
        self.check_models = check;
        self
    }

    /// The recorded formula as a DIMACS [`Cnf`].
    pub fn to_cnf(&self) -> Cnf {
        let clauses = self
            .clauses
            .iter()
            .map(|clause| {
                clause
                    .iter()
                    .map(|l| {
                        let v = l.var().index() as i64 + 1;
                        if l.is_positive() {
                            v
                        } else {
                            -v
                        }
                    })
                    .collect()
            })
            .collect();
        Cnf {
            num_vars: self.inner.num_vars(),
            clauses,
        }
    }

    /// The recorded query history.
    pub fn queries(&self) -> &[QueryRecord] {
        &self.queries
    }

    /// The wrapped backend.
    pub fn inner(&self) -> &B {
        &self.inner
    }

    /// Panics if `model` violates any recorded clause — the cross-check that
    /// makes this backend useful when debugging new encodings or backends.
    fn assert_model_valid(&self, model: &Model) {
        for (index, clause) in self.clauses.iter().enumerate() {
            assert!(
                clause.iter().any(|&l| model.lit_value(l)),
                "backend '{}' returned a model violating recorded clause #{index}: {clause:?}",
                self.inner.name()
            );
        }
    }
}

impl<B: SatBackend> SatBackend for DimacsLoggingBackend<B> {
    fn name(&self) -> &'static str {
        "dimacs-log"
    }

    fn new_var(&mut self) -> Var {
        self.inner.new_var()
    }

    fn num_vars(&self) -> usize {
        self.inner.num_vars()
    }

    fn num_clauses(&self) -> usize {
        self.inner.num_clauses()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.clauses.push(lits.to_vec());
        self.inner.add_clause(lits)
    }

    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        let result = self.inner.solve_with_assumptions(assumptions);
        if result == SolveResult::Sat && self.check_models {
            let model = self.inner.model().expect("SAT result carries a model");
            self.assert_model_valid(model);
        }
        self.queries.push(QueryRecord {
            assumptions: assumptions.to_vec(),
            result: Some(result),
            max_conflicts: None,
        });
        result
    }

    fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        let result = self.inner.solve_limited(assumptions, max_conflicts);
        if result == Some(SolveResult::Sat) && self.check_models {
            let model = self.inner.model().expect("SAT result carries a model");
            self.assert_model_valid(model);
        }
        self.queries.push(QueryRecord {
            assumptions: assumptions.to_vec(),
            result,
            max_conflicts: Some(max_conflicts),
        });
        result
    }

    fn model(&self) -> Option<&Model> {
        self.inner.model()
    }

    fn stats(&self) -> SolverStats {
        self.inner.stats()
    }

    fn portfolio_stats(&self) -> Option<PortfolioStats> {
        self.inner.portfolio_stats()
    }
}

/// Runtime selection of a SAT backend.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum BackendChoice {
    /// The in-tree CDCL solver with the tuned heuristics (fastest; the
    /// default).
    #[default]
    Cdcl,
    /// The CDCL solver with the decision/learning heuristics disabled
    /// ([`crate::SolverConfig::reference`]): linear decision scan, no
    /// clause-database reduction, no learned-clause minimization (the
    /// propagation layer — blockers, binary path — is structural and stays
    /// on). Kept as the cross-checking and benchmarking baseline.
    CdclReference,
    /// The independent second CDCL solver ([`crate::ScrewSolver`]): plain
    /// two-watched propagation, linear-scan VSIDS, geometric restarts,
    /// sharing no code with the tuned solver.
    Screwsat,
    /// The CDCL solver behind the clause-recording, model-cross-checking
    /// DIMACS wrapper (for debugging and formula export).
    DimacsLogging,
    /// Several engines behind one interface ([`crate::PortfolioBackend`]):
    /// a deterministic race in the default mode, a run-to-completion
    /// cross-check when the config says [`PortfolioConfig::is_checked`].
    Portfolio(PortfolioConfig),
}

impl BackendChoice {
    /// The default racing portfolio (tuned CDCL vs the independent second
    /// solver).
    pub fn portfolio() -> Self {
        BackendChoice::Portfolio(PortfolioConfig::racing())
    }

    /// The cross-checking portfolio: every engine runs every query to
    /// completion; any verdict disagreement panics.
    pub fn portfolio_checked() -> Self {
        BackendChoice::Portfolio(PortfolioConfig::checked())
    }

    /// Instantiates a fresh backend of the chosen kind.
    pub fn instantiate(self) -> Box<dyn SatBackend> {
        match self {
            BackendChoice::Cdcl => Box::new(Solver::new()),
            BackendChoice::CdclReference => {
                Box::new(Solver::with_config(crate::SolverConfig::reference()))
            }
            BackendChoice::Screwsat => Box::new(ScrewSolver::new()),
            BackendChoice::DimacsLogging => Box::new(DimacsLoggingBackend::default()),
            BackendChoice::Portfolio(config) => Box::new(PortfolioBackend::new(config)),
        }
    }

    /// The single-engine choice whose answers are reproducible for this
    /// backend: a portfolio maps to its primary (highest-priority) member,
    /// everything else to itself. The synthesis pipeline extracts final
    /// solutions on this backend so that reports are bit-identical no matter
    /// which engine won the intermediate races.
    pub fn canonical(self) -> BackendChoice {
        match self {
            BackendChoice::Portfolio(config) => match config.primary() {
                crate::PortfolioLane::Cdcl => BackendChoice::Cdcl,
                crate::PortfolioLane::Screwsat => BackendChoice::Screwsat,
                crate::PortfolioLane::CdclReference => BackendChoice::CdclReference,
            },
            other => other,
        }
    }

    /// Returns `true` if queries race concurrently and may hand out
    /// timing-dependent models (the non-checked portfolio). Such a choice
    /// needs the canonical-extraction discipline; every other backend is
    /// deterministic query by query.
    pub fn is_racing_portfolio(self) -> bool {
        matches!(self, BackendChoice::Portfolio(config) if !config.is_checked())
    }
}

impl std::fmt::Display for BackendChoice {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            BackendChoice::Cdcl => write!(f, "cdcl"),
            BackendChoice::CdclReference => write!(f, "cdcl-ref"),
            BackendChoice::Screwsat => write!(f, "screwsat"),
            BackendChoice::DimacsLogging => write!(f, "dimacs-log"),
            BackendChoice::Portfolio(config) if config.is_checked() => {
                write!(f, "portfolio-checked")
            }
            BackendChoice::Portfolio(_) => write!(f, "portfolio"),
        }
    }
}

/// How the optimization ladders of the synthesis pipeline drive the solver.
///
/// The (u, v) verification ladder and the correction weight minimization
/// issue sequences of queries that differ only in a cardinality bound. The
/// two modes answer those sequences differently; both converge to the same
/// optimal bounds and — because the final solution is always extracted by one
/// deterministic solve at the optimum — to bit-identical solutions.
///
/// The bit-identity guarantee holds for ladders that complete, i.e. under
/// the default unlimited conflict budget. A ladder interrupted by a
/// configured conflict budget returns the best feasible solution it has in
/// hand, which may differ between the modes (exactly as it already costs
/// weight optimality within a single mode).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default)]
pub enum LadderMode {
    /// One live [`IncrementalSession`](crate::IncrementalSession) per ladder:
    /// the base encoding and a single cardinality counter
    /// ([`Encoder::cardinality_ladder`](crate::Encoder::cardinality_ladder))
    /// are built once, each tightened bound is a single assumption literal,
    /// and learned clauses survive between bounds (the default).
    #[default]
    Incremental,
    /// A fresh backend per query, re-encoding the full formula every time.
    /// Slower, but each query is fully independent — kept for cross-checking
    /// the incremental path.
    Fresh,
}

impl std::fmt::Display for LadderMode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            LadderMode::Incremental => write!(f, "incremental"),
            LadderMode::Fresh => write!(f, "fresh"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_formula(backend: &mut dyn SatBackend) -> (Var, Var) {
        let a = backend.new_var();
        let b = backend.new_var();
        backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        backend.add_clause(&[Lit::neg(a)]);
        (a, b)
    }

    #[test]
    fn both_backends_agree_on_a_tiny_formula() {
        for choice in [
            BackendChoice::Cdcl,
            BackendChoice::CdclReference,
            BackendChoice::Screwsat,
            BackendChoice::DimacsLogging,
            BackendChoice::portfolio(),
            BackendChoice::portfolio_checked(),
        ] {
            let mut backend = choice.instantiate();
            let (a, b) = tiny_formula(backend.as_mut());
            assert_eq!(backend.solve(), SolveResult::Sat, "{choice}");
            let model = backend.model().expect("sat");
            assert!(!model.value(a));
            assert!(model.value(b));
            assert_eq!(backend.num_vars(), 2);
        }
    }

    #[test]
    fn logging_backend_exports_dimacs_and_queries() {
        let mut backend = DimacsLoggingBackend::default();
        let (_, b) = tiny_formula(&mut backend);
        assert_eq!(backend.solve(), SolveResult::Sat);
        assert_eq!(
            backend.solve_with_assumptions(&[Lit::neg(b)]),
            SolveResult::Unsat
        );
        assert_eq!(backend.solve_limited(&[], u64::MAX), Some(SolveResult::Sat));

        let cnf = backend.to_cnf();
        assert_eq!(cnf.num_vars, 2);
        assert_eq!(cnf.clauses, vec![vec![1, 2], vec![-1]]);
        // The exported formula round-trips through the DIMACS text form.
        let reparsed = Cnf::parse(&cnf.to_dimacs()).unwrap();
        assert_eq!(reparsed, cnf);

        let queries = backend.queries();
        assert_eq!(queries.len(), 3);
        assert_eq!(queries[0].result, Some(SolveResult::Sat));
        assert_eq!(queries[1].assumptions, vec![Lit::neg(b)]);
        assert_eq!(queries[1].result, Some(SolveResult::Unsat));
        assert_eq!(queries[2].max_conflicts, Some(u64::MAX));
    }

    #[test]
    fn solve_limited_budget_is_forwarded() {
        // An unsatisfiable pigeonhole-style core that needs several conflicts.
        let mut backend = DimacsLoggingBackend::default();
        let vars: Vec<Var> = (0..12).map(|_| backend.new_var()).collect();
        for i in 0..4 {
            backend.add_clause(&[
                Lit::pos(vars[3 * i]),
                Lit::pos(vars[3 * i + 1]),
                Lit::pos(vars[3 * i + 2]),
            ]);
        }
        for i in 0..12 {
            for j in (i + 1)..12 {
                backend.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
            }
        }
        assert_eq!(backend.solve_limited(&[], 1), None);
        assert_eq!(backend.queries().last().unwrap().result, None);
        assert_eq!(
            backend.solve_limited(&[], u64::MAX),
            Some(SolveResult::Unsat)
        );
    }

    #[test]
    fn stats_pass_through() {
        let mut backend = BackendChoice::DimacsLogging.instantiate();
        let (_, _) = tiny_formula(backend.as_mut());
        backend.solve();
        let stats = backend.stats();
        assert!(stats.propagations > 0 || stats.decisions > 0);
    }

    #[test]
    fn canonical_choice_unwraps_portfolios_only() {
        assert_eq!(BackendChoice::portfolio().canonical(), BackendChoice::Cdcl);
        assert_eq!(
            BackendChoice::portfolio_checked().canonical(),
            BackendChoice::Cdcl
        );
        for choice in [
            BackendChoice::Cdcl,
            BackendChoice::CdclReference,
            BackendChoice::Screwsat,
            BackendChoice::DimacsLogging,
        ] {
            assert_eq!(choice.canonical(), choice);
            assert!(!choice.is_racing_portfolio());
        }
        assert!(BackendChoice::portfolio().is_racing_portfolio());
        assert!(!BackendChoice::portfolio_checked().is_racing_portfolio());
    }

    #[test]
    fn portfolio_stats_surface_through_the_trait_object() {
        let mut backend = BackendChoice::portfolio().instantiate();
        let (_, _) = tiny_formula(backend.as_mut());
        backend.solve();
        let portfolio = backend.portfolio_stats().expect("portfolio backend");
        assert_eq!(portfolio.solo + portfolio.races, 1);
        assert!(BackendChoice::Cdcl
            .instantiate()
            .portfolio_stats()
            .is_none());
    }
}
