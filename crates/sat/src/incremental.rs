//! Long-lived incremental solve sessions built on guard literals.
//!
//! The synthesis pipeline's optimization ladders (minimize the number of
//! measurements `u`, then binary-search the summed weight `v`) issue many
//! queries over one base encoding that differ only in a cardinality bound.
//! [`IncrementalSession`] keeps a single backend alive across such a ladder,
//! so the clauses the solver learns while answering one bound remain
//! available for the next — the classic incremental-SAT speedup of
//! assumption-based solving. The solver's LBD-driven clause-database
//! reduction (see [`Solver`]) keeps long-lived sessions from accumulating
//! low-value learned clauses between bounds: locked reason clauses and the
//! original encoding always survive, so retained learning stays sound.
//! Retractable constraints come in two flavours:
//!
//! * arbitrary clause groups behind guard literals
//!   ([`IncrementalSession::guard`] / [`IncrementalSession::release_guard`],
//!   see [`SatBackend::new_guard`]), and
//! * cardinality bounds as single assumption literals on a one-time counter
//!   ([`crate::Encoder::cardinality_ladder`] with
//!   [`IncrementalSession::assume`] / [`IncrementalSession::retract`]) — the
//!   form the (u, v) ladders use, since tightening then re-encodes nothing.

use crate::{Encoder, Lit, Model, SatBackend, SolveResult, Solver, SolverStats};

/// Clause-reuse statistics of one [`IncrementalSession`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct ReuseStats {
    /// Total queries answered by the session.
    pub queries: u64,
    /// Queries answered on a warm solver (every query after the first).
    pub warm_queries: u64,
    /// Clauses (original + learned) already present when warm queries
    /// started — the work the session did not have to redo.
    pub retained_clauses: u64,
    /// Guard literals created.
    pub guards_created: u64,
    /// Guard literals released.
    pub guards_released: u64,
}

impl ReuseStats {
    /// Adds the counters of `other` into `self`.
    pub fn absorb(&mut self, other: &ReuseStats) {
        self.queries += other.queries;
        self.warm_queries += other.warm_queries;
        self.retained_clauses += other.retained_clauses;
        self.guards_created += other.guards_created;
        self.guards_released += other.guards_released;
    }
}

/// A live solver owned for a whole optimization ladder.
///
/// The session tracks the set of *active* guards and passes them as
/// assumptions on every [`IncrementalSession::solve`], so callers only
/// manage constraint lifetimes ([`IncrementalSession::guard`] /
/// [`IncrementalSession::release_guard`]), never assumption lists.
///
/// # Examples
///
/// A retractable cardinality bound: UNSAT while the bound is active, SAT
/// again after the guard is released.
///
/// ```
/// use dftsp_sat::{IncrementalSession, Lit, SolveResult, Solver};
///
/// let mut session = IncrementalSession::new(Solver::new());
/// let lits: Vec<Lit> = (0..4).map(|_| Lit::pos(session.backend_mut().new_var())).collect();
/// for &l in &lits {
///     session.add_clause(&[l]); // force all four true
/// }
/// let bound = session.bound_at_most_k(&lits, 2);
/// assert_eq!(session.solve(None), Some(SolveResult::Unsat));
/// session.release_guard(bound);
/// assert_eq!(session.solve(None), Some(SolveResult::Sat));
/// assert_eq!(session.reuse().warm_queries, 1);
/// ```
#[derive(Debug)]
pub struct IncrementalSession<B: SatBackend = Solver> {
    backend: B,
    active_guards: Vec<Lit>,
    reuse: ReuseStats,
    observed_vars: usize,
    observed_clauses: usize,
}

impl<B: SatBackend> IncrementalSession<B> {
    /// Wraps a backend (typically freshly instantiated) into a session.
    pub fn new(backend: B) -> Self {
        IncrementalSession {
            backend,
            active_guards: Vec::new(),
            reuse: ReuseStats::default(),
            observed_vars: 0,
            observed_clauses: 0,
        }
    }

    /// The wrapped backend, for encoding base constraints.
    pub fn backend_mut(&mut self) -> &mut B {
        &mut self.backend
    }

    /// An [`Encoder`] targeting the wrapped backend.
    pub fn encoder(&mut self) -> Encoder<'_, B> {
        Encoder::new(&mut self.backend)
    }

    /// Adds a permanent clause.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backend.add_clause(lits)
    }

    /// Allocates a fresh guard literal and marks it active: every subsequent
    /// [`IncrementalSession::solve`] assumes it until it is released.
    pub fn guard(&mut self) -> Lit {
        let guard = self.backend.new_guard();
        self.active_guards.push(guard);
        self.reuse.guards_created += 1;
        guard
    }

    /// Releases a guard: it is no longer assumed and the constraints behind
    /// it are permanently retracted. Idempotent — releasing a guard that is
    /// not active (already released, or never created through this session)
    /// is a no-op, so callers unwinding a cancelled query (e.g. a portfolio
    /// race loser) can release unconditionally without asserting a second
    /// `¬guard` unit or inflating [`ReuseStats::guards_released`]. Returns
    /// `true` if the guard was active and has now been released.
    pub fn release_guard(&mut self, guard: Lit) -> bool {
        let before = self.active_guards.len();
        self.active_guards.retain(|&g| g != guard);
        if self.active_guards.len() == before {
            return false;
        }
        self.backend.release_guard(guard);
        self.reuse.guards_released += 1;
        true
    }

    /// Installs a retractable at-most-`k` bound over `lits` behind a fresh
    /// active guard, and returns the guard.
    pub fn bound_at_most_k(&mut self, lits: &[Lit], k: usize) -> Lit {
        let guard = self.guard();
        Encoder::new(&mut self.backend).at_most_k_guarded(Some(guard), lits, k);
        guard
    }

    /// Adds an externally created literal (e.g. a
    /// [`Encoder::cardinality_ladder`] output) to the set assumed on every
    /// solve.
    pub fn assume(&mut self, lit: Lit) {
        self.active_guards.push(lit);
    }

    /// Stops assuming a literal, without asserting anything about it. Unlike
    /// [`IncrementalSession::release_guard`] the literal stays free, so a
    /// bound expressed through it can later be re-assumed.
    pub fn retract(&mut self, lit: Lit) {
        self.active_guards.retain(|&l| l != lit);
    }

    /// The guards currently assumed on every solve.
    pub fn active_guards(&self) -> &[Lit] {
        &self.active_guards
    }

    /// Solves under the active guards, optionally with a conflict budget
    /// (`None` result = budget exhausted).
    pub fn solve(&mut self, max_conflicts: Option<u64>) -> Option<SolveResult> {
        if self.reuse.queries > 0 {
            self.reuse.warm_queries += 1;
            self.reuse.retained_clauses += self.backend.num_clauses() as u64;
        }
        self.reuse.queries += 1;
        match max_conflicts {
            None => Some(self.backend.solve_with_assumptions(&self.active_guards)),
            Some(budget) => self.backend.solve_limited(&self.active_guards, budget),
        }
    }

    /// The model of the most recent satisfiable query, if any.
    pub fn model(&self) -> Option<&Model> {
        self.backend.model()
    }

    /// Cumulative search statistics of the wrapped backend.
    pub fn stats(&self) -> SolverStats {
        self.backend.stats()
    }

    /// Per-lane portfolio attribution of the wrapped backend, when it is a
    /// portfolio (see [`SatBackend::portfolio_stats`]).
    pub fn portfolio_stats(&self) -> Option<crate::PortfolioStats> {
        self.backend.portfolio_stats()
    }

    /// Number of variables allocated in the wrapped backend.
    pub fn num_vars(&self) -> usize {
        self.backend.num_vars()
    }

    /// Number of clauses in the wrapped backend.
    pub fn num_clauses(&self) -> usize {
        self.backend.num_clauses()
    }

    /// Total queries answered so far.
    pub fn queries(&self) -> u64 {
        self.reuse.queries
    }

    /// Variables and clauses added to the formula since the previous call
    /// (everything on the first call). Statistics collectors use this to
    /// count each variable and clause of a long-lived session exactly once.
    pub fn formula_growth(&mut self) -> (usize, usize) {
        let vars = self.backend.num_vars() - self.observed_vars;
        let clauses = self
            .backend
            .num_clauses()
            .saturating_sub(self.observed_clauses);
        self.observed_vars = self.backend.num_vars();
        self.observed_clauses = self.backend.num_clauses();
        (vars, clauses)
    }

    /// The clause-reuse statistics accumulated so far.
    pub fn reuse(&self) -> ReuseStats {
        self.reuse
    }

    /// Unwraps the session, returning the live backend.
    pub fn into_backend(self) -> B {
        self.backend
    }
}

/// An [`IncrementalSession`] plus the retractable-bound bookkeeping of one
/// optimization ladder: a one-time cardinality counter over a fixed literal
/// set, with the current at-most bound expressed as a single assumption on
/// the counter outputs.
///
/// This is the shared machinery of the synthesis (u, v) ladders — encode the
/// base constraints on [`BoundedLadder::session_mut`], then
/// [`BoundedLadder::prepare_bounds`] once and [`BoundedLadder::set_bound`]
/// per probe; nothing is re-encoded when the bound moves.
#[derive(Debug)]
pub struct BoundedLadder<B: SatBackend = Solver> {
    session: IncrementalSession<B>,
    lits: Vec<Lit>,
    /// `counter[j]` is implied true when more than `j` of `lits` are true.
    counter: Vec<Lit>,
    /// The currently assumed bound: (assumption literal, bound value).
    bound: Option<(Lit, usize)>,
}

impl<B: SatBackend> BoundedLadder<B> {
    /// Wraps a session whose future at-most bounds range over `lits`.
    pub fn new(session: IncrementalSession<B>, lits: Vec<Lit>) -> Self {
        BoundedLadder {
            session,
            lits,
            counter: Vec::new(),
            bound: None,
        }
    }

    /// The underlying incremental session (for encoding base constraints,
    /// blocking clauses, and solving).
    pub fn session_mut(&mut self) -> &mut IncrementalSession<B> {
        &mut self.session
    }

    /// The model of the most recent satisfiable query, if any.
    pub fn model(&self) -> Option<&Model> {
        self.session.model()
    }

    /// Encodes the shared cardinality counter once, wide enough to express
    /// every bound below `width`. Later calls are no-ops.
    pub fn prepare_bounds(&mut self, width: usize) {
        if self.counter.is_empty() && width > 0 {
            self.counter = self.session.encoder().cardinality_ladder(&self.lits, width);
        }
    }

    /// Assumes a (tightened or relaxed) at-most-`v` bound, retracting the
    /// previous one. Pure assumption bookkeeping — nothing is re-encoded.
    ///
    /// # Panics
    ///
    /// Panics if `v` is not below the width passed to
    /// [`BoundedLadder::prepare_bounds`].
    pub fn set_bound(&mut self, v: usize) {
        if let Some((lit, current)) = self.bound {
            if current == v {
                return;
            }
            self.session.retract(lit);
        }
        assert!(
            v < self.counter.len(),
            "bound {v} exceeds the prepared counter width {}",
            self.counter.len()
        );
        let lit = !self.counter[v];
        self.session.assume(lit);
        self.bound = Some((lit, v));
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{BackendChoice, Var};

    #[test]
    fn tightening_bounds_behind_guards() {
        // Exactly-3-of-5 base constraints; walk the weight bound down.
        let mut session = IncrementalSession::new(Solver::new());
        let lits: Vec<Lit> = (0..5)
            .map(|_| Lit::pos(session.backend_mut().new_var()))
            .collect();
        session.encoder().at_least_k(&lits, 3);

        assert_eq!(session.solve(None), Some(SolveResult::Sat));
        let b4 = session.bound_at_most_k(&lits, 4);
        assert_eq!(session.solve(None), Some(SolveResult::Sat));
        let b3 = session.bound_at_most_k(&lits, 3);
        assert_eq!(session.solve(None), Some(SolveResult::Sat));
        let b2 = session.bound_at_most_k(&lits, 2);
        assert_eq!(session.solve(None), Some(SolveResult::Unsat));
        // Releasing the infeasible bound restores satisfiability.
        session.release_guard(b2);
        assert_eq!(session.solve(None), Some(SolveResult::Sat));
        session.release_guard(b3);
        session.release_guard(b4);
        assert_eq!(session.solve(None), Some(SolveResult::Sat));

        let reuse = session.reuse();
        assert_eq!(reuse.queries, 6);
        assert_eq!(reuse.warm_queries, 5);
        assert_eq!(reuse.guards_created, 3);
        assert_eq!(reuse.guards_released, 3);
        assert!(reuse.retained_clauses > 0);
    }

    #[test]
    fn works_on_boxed_runtime_backends() {
        for choice in [BackendChoice::Cdcl, BackendChoice::DimacsLogging] {
            let mut session = IncrementalSession::new(choice.instantiate());
            let a = Lit::pos(session.backend_mut().new_var());
            let b = Lit::pos(session.backend_mut().new_var());
            session.add_clause(&[a, b]);
            let guard = session.guard();
            // Guarded constraint: ¬a.
            session.add_clause(&[!guard, !a]);
            session.add_clause(&[!guard, !b]);
            assert_eq!(session.solve(None), Some(SolveResult::Unsat), "{choice}");
            session.release_guard(guard);
            assert_eq!(session.solve(None), Some(SolveResult::Sat), "{choice}");
            assert!(session.model().is_some());
        }
    }

    #[test]
    fn bounded_ladder_moves_bounds_without_reencoding() {
        let mut session = IncrementalSession::new(Solver::new());
        let lits: Vec<Lit> = (0..5)
            .map(|_| Lit::pos(session.backend_mut().new_var()))
            .collect();
        session.encoder().at_least_k(&lits, 3);
        let mut ladder = BoundedLadder::new(session, lits);
        ladder.prepare_bounds(5);
        let clauses_after_counter = ladder.session_mut().num_clauses();
        // Tighten, relax, re-tighten: feasible iff the bound admits 3 trues.
        for (bound, expect) in [
            (4, SolveResult::Sat),
            (2, SolveResult::Unsat),
            (3, SolveResult::Sat),
        ] {
            ladder.set_bound(bound);
            assert_eq!(
                ladder.session_mut().solve(None),
                Some(expect),
                "bound {bound}"
            );
        }
        assert!(ladder.model().is_some());
        // Moving the bound encoded nothing beyond learned clauses — the
        // original clause count only grew by what the solver learned.
        let reuse = ladder.session_mut().reuse();
        assert_eq!(reuse.queries, 3);
        assert!(ladder.session_mut().num_clauses() >= clauses_after_counter);
    }

    #[test]
    fn release_guard_is_idempotent_and_tracks_actual_releases() {
        let mut session = IncrementalSession::new(Solver::new());
        let a = Lit::pos(session.backend_mut().new_var());
        session.add_clause(&[a]);
        let guard = session.guard();
        session.add_clause(&[!guard, !a]);
        let clauses_before = session.num_clauses();
        assert!(session.release_guard(guard));
        // A second release is a no-op: no extra ¬guard unit, no double count.
        assert!(!session.release_guard(guard));
        let stray = Lit::pos(session.backend_mut().new_var());
        assert!(!session.release_guard(stray));
        assert_eq!(session.num_clauses(), clauses_before);
        assert_eq!(session.reuse().guards_created, 1);
        assert_eq!(session.reuse().guards_released, 1);
        assert!(session.active_guards().is_empty());
        assert_eq!(session.solve(None), Some(SolveResult::Sat));
    }

    #[test]
    fn cancelled_portfolio_race_releases_guards_cleanly() {
        // A portfolio-backed session whose query is cancelled by the
        // conflict budget must release its guards without leaking
        // assumption literals into later queries.
        let mut session = IncrementalSession::new(BackendChoice::portfolio().instantiate());
        let vars: Vec<Var> = (0..15).map(|_| session.backend_mut().new_var()).collect();
        for i in 0..5 {
            session.add_clause(&[
                Lit::pos(vars[3 * i]),
                Lit::pos(vars[3 * i + 1]),
                Lit::pos(vars[3 * i + 2]),
            ]);
        }
        for i in 0..15 {
            for j in (i + 1)..15 {
                session.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
            }
        }
        // Benign padding pushes the formula past the portfolio's racing
        // floor so the interrupted query below is a real multi-engine race.
        let pad: Vec<Var> = (0..40).map(|_| session.backend_mut().new_var()).collect();
        for i in 0..40 {
            for j in 1..27 {
                session.add_clause(&[Lit::pos(pad[i]), Lit::pos(pad[(i + j) % 40])]);
            }
        }
        let guard = session.guard();
        session.add_clause(&[!guard, Lit::pos(vars[0])]);
        // Interrupted query: the portfolio losers are cancelled mid-search.
        assert_eq!(session.solve(Some(1)), None);
        assert!(session.release_guard(guard));
        assert!(!session.release_guard(guard));
        assert!(session.active_guards().is_empty());
        assert_eq!(session.reuse().guards_released, 1);
        // The session stays consistent and completes the proof.
        assert_eq!(session.solve(None), Some(SolveResult::Unsat));
    }

    #[test]
    fn budget_is_forwarded() {
        let mut session = IncrementalSession::new(Solver::new());
        let vars: Vec<Var> = (0..12).map(|_| session.backend_mut().new_var()).collect();
        for i in 0..4 {
            session.add_clause(&[
                Lit::pos(vars[3 * i]),
                Lit::pos(vars[3 * i + 1]),
                Lit::pos(vars[3 * i + 2]),
            ]);
        }
        for i in 0..12 {
            for j in (i + 1)..12 {
                session.add_clause(&[Lit::neg(vars[i]), Lit::neg(vars[j])]);
            }
        }
        assert_eq!(session.solve(Some(1)), None);
        assert_eq!(session.solve(None), Some(SolveResult::Unsat));
    }
}
