//! A second, independent CDCL solver (the portfolio's "other opinion").
//!
//! [`ScrewSolver`] is a compact solver in the screwsat lineage: first-UIP
//! clause learning over a plain two-watched-literal scheme, a linear-scan
//! VSIDS decision rule, geometric restarts and phase saving — and nothing
//! else. It deliberately shares **no code** with [`crate::Solver`]:
//!
//! * one flat watch list per literal for every clause length (no blocker
//!   literals, no dedicated binary-clause path),
//! * no learned-clause minimization and no clause-database reduction (the
//!   database only grows),
//! * geometric restarts instead of the Luby sequence,
//! * saved phases default to *positive* (the tuned solver defaults to
//!   negative), so the two engines explore different assignments first.
//!
//! Because the implementations are independent, an agreement between them on
//! a SAT/UNSAT verdict is meaningful evidence of correctness, which is what
//! the portfolio's cross-check mode (see [`crate::PortfolioConfig`]) relies
//! on. Like every backend in this crate the solver is fully deterministic:
//! no randomness, all tie-breaks by lowest variable index.

use crate::{Lit, Model, SolveResult, SolverStats, Var};

/// Truth value of a variable during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Assignment {
    True,
    False,
    Open,
}

/// A compact, independent CDCL solver (see the module docs).
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, ScrewSolver, SolveResult};
///
/// let mut s = ScrewSolver::new();
/// let a = s.new_var();
/// let b = s.new_var();
/// s.add_clause(&[Lit::pos(a), Lit::pos(b)]);
/// s.add_clause(&[Lit::neg(a)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model().expect("sat").value(b));
/// ```
#[derive(Debug, Clone, Default)]
pub struct ScrewSolver {
    /// Clause arena, originals and learned clauses interleaved. The watched
    /// literals of a clause are always `lits[0]` and `lits[1]`; the reason
    /// invariant is that `lits[0]` of a reason clause is the implied literal.
    clauses: Vec<Vec<Lit>>,
    /// For each literal code, the clauses in which that literal is watched.
    watches: Vec<Vec<u32>>,
    values: Vec<Assignment>,
    levels: Vec<usize>,
    reasons: Vec<Option<u32>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    bump: f64,
    saved_phase: Vec<bool>,
    seen: Vec<bool>,
    unsat: bool,
    model: Option<Model>,
    stats: SolverStats,
}

/// First geometric restart interval (conflicts).
const RESTART_BASE: u64 = 128;

impl ScrewSolver {
    /// Creates an empty solver.
    pub fn new() -> Self {
        ScrewSolver {
            bump: 1.0,
            ..ScrewSolver::default()
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var::from_index(self.values.len());
        self.values.push(Assignment::Open);
        self.levels.push(0);
        self.reasons.push(None);
        self.activity.push(0.0);
        self.saved_phase.push(true);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.values.len()
    }

    /// Number of stored clauses (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Accumulated search statistics. Fields for heuristics this solver does
    /// not implement (minimization, database reduction) stay zero.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn lit_value(&self, lit: Lit) -> Assignment {
        match self.values[lit.var().index()] {
            Assignment::Open => Assignment::Open,
            Assignment::True if lit.is_positive() => Assignment::True,
            Assignment::True => Assignment::False,
            Assignment::False if lit.is_positive() => Assignment::False,
            Assignment::False => Assignment::True,
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn assign(&mut self, lit: Lit, reason: Option<u32>) {
        debug_assert_eq!(self.lit_value(lit), Assignment::Open);
        let v = lit.var().index();
        self.values[v] = if lit.is_positive() {
            Assignment::True
        } else {
            Assignment::False
        };
        self.levels[v] = self.decision_level();
        self.reasons[v] = reason;
        self.saved_phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    fn backtrack(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail bound checked");
            let v = lit.var().index();
            self.values[v] = Assignment::Open;
            self.reasons[v] = None;
        }
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    fn attach(&mut self, lits: Vec<Lit>) -> u32 {
        debug_assert!(lits.len() >= 2);
        let ci = self.clauses.len() as u32;
        self.watches[lits[0].code()].push(ci);
        self.watches[lits[1].code()].push(ci);
        self.clauses.push(lits);
        self.stats.peak_clause_db = self.stats.peak_clause_db.max(self.clauses.len() as u64);
        ci
    }

    /// Adds a clause; returns `false` if the formula became trivially
    /// unsatisfiable.
    ///
    /// # Panics
    ///
    /// Panics if a literal references an unallocated variable.
    pub fn add_clause(&mut self, lits: &[Lit]) -> bool {
        self.backtrack(0);
        if self.unsat {
            return false;
        }
        let mut lits = lits.to_vec();
        for l in &lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} refers to an unallocated variable"
            );
        }
        lits.sort();
        lits.dedup();
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true; // tautology
        }
        // Evaluate against the level-0 assignment.
        let mut open = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.lit_value(l) {
                Assignment::True => return true,
                Assignment::False => {}
                Assignment::Open => open.push(l),
            }
        }
        match open.len() {
            0 => {
                self.unsat = true;
                false
            }
            1 => {
                self.assign(open[0], None);
                if self.propagate().is_some() {
                    self.unsat = true;
                }
                !self.unsat
            }
            _ => {
                self.attach(open);
                true
            }
        }
    }

    /// Unit propagation to fixpoint; returns a conflicting clause, if any.
    fn propagate(&mut self) -> Option<u32> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let fc = (!p).code();
            let mut kept = 0usize;
            let mut i = 0usize;
            let mut conflict = None;
            while i < self.watches[fc].len() {
                let ci = self.watches[fc][i] as usize;
                i += 1;
                // Normalize so the falsified watch sits at position 1.
                if self.clauses[ci][0] == !p {
                    self.clauses[ci].swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci][1], !p);
                let first = self.clauses[ci][0];
                if self.lit_value(first) == Assignment::True {
                    self.watches[fc][kept] = ci as u32;
                    kept += 1;
                    continue;
                }
                // Look for a non-false literal to watch instead.
                let mut moved = false;
                for k in 2..self.clauses[ci].len() {
                    if self.lit_value(self.clauses[ci][k]) != Assignment::False {
                        self.clauses[ci].swap(1, k);
                        let w = self.clauses[ci][1];
                        self.watches[w.code()].push(ci as u32);
                        moved = true;
                        break;
                    }
                }
                if moved {
                    continue;
                }
                // Unit or conflicting; the watcher stays either way.
                self.watches[fc][kept] = ci as u32;
                kept += 1;
                if self.lit_value(first) == Assignment::False {
                    conflict = Some(ci as u32);
                    while i < self.watches[fc].len() {
                        self.watches[fc][kept] = self.watches[fc][i];
                        kept += 1;
                        i += 1;
                    }
                    break;
                }
                self.assign(first, Some(ci as u32));
            }
            self.watches[fc].truncate(kept);
            if conflict.is_some() {
                self.qhead = self.trail.len();
                return conflict;
            }
        }
        None
    }

    fn bump_activity(&mut self, v: usize) {
        self.activity[v] += self.bump;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.bump *= 1e-100;
        }
    }

    /// First-UIP conflict analysis without minimization. Returns the learned
    /// clause (asserting literal first, a highest-level literal second) and
    /// the backjump level.
    fn analyze(&mut self, conflict: u32) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit::pos(Var::from_index(0))]; // asserting slot
        let mut pending = 0usize;
        let mut confl = conflict as usize;
        let mut index = self.trail.len();
        let mut asserting: Option<Lit> = None;
        let mut touched = Vec::new();
        let current = self.decision_level();

        loop {
            let skip = usize::from(asserting.is_some());
            for k in skip..self.clauses[confl].len() {
                let q = self.clauses[confl][k];
                let v = q.var().index();
                if !self.seen[v] && self.levels[v] > 0 {
                    self.seen[v] = true;
                    touched.push(v);
                    self.bump_activity(v);
                    if self.levels[v] >= current {
                        pending += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            self.seen[lit.var().index()] = false;
            asserting = Some(lit);
            pending -= 1;
            if pending == 0 {
                break;
            }
            confl = self.reasons[lit.var().index()].expect("implied literal has a reason") as usize;
        }
        learnt[0] = !asserting.expect("analysis visited at least one literal");

        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut deepest = 1;
            for i in 2..learnt.len() {
                if self.levels[learnt[i].var().index()] > self.levels[learnt[deepest].var().index()]
                {
                    deepest = i;
                }
            }
            learnt.swap(1, deepest);
            self.levels[learnt[1].var().index()]
        };
        for v in touched {
            self.seen[v] = false;
        }
        (learnt, backjump)
    }

    fn learn(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.assign(learnt[0], None);
        } else {
            let asserting = learnt[0];
            let ci = self.attach(learnt);
            self.assign(asserting, Some(ci));
        }
    }

    /// Linear-scan VSIDS: the unassigned variable with the strictly greatest
    /// activity, lowest index on ties.
    fn pick_branch(&self) -> Option<Var> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.values[v] == Assignment::Open {
                match best {
                    Some(b) if self.activity[v] <= self.activity[b] => {}
                    _ => best = Some(v),
                }
            }
        }
        best.map(Var::from_index)
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves under the given assumption literals.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve always terminates with a result")
    }

    /// Solves with a conflict budget; returns `None` if the budget was
    /// exhausted. The solver backtracks to level 0 before returning, so an
    /// interrupted query leaves no residual trail and learned clauses carry
    /// over to the next call.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.model = None;
        if self.unsat {
            return Some(SolveResult::Unsat);
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption {l} refers to an unallocated variable"
            );
        }
        self.backtrack(0);
        let mut conflicts = 0u64;
        let mut since_restart = 0u64;
        let mut restart_limit = RESTART_BASE;

        loop {
            if let Some(confl) = self.propagate() {
                self.stats.conflicts += 1;
                conflicts += 1;
                since_restart += 1;
                if self.decision_level() == 0 {
                    self.unsat = true;
                    return Some(SolveResult::Unsat);
                }
                let (learnt, backjump) = self.analyze(confl);
                self.backtrack(backjump);
                self.learn(learnt);
                self.bump /= 0.9;
                if conflicts >= max_conflicts {
                    self.backtrack(0);
                    return None;
                }
                if since_restart >= restart_limit {
                    self.stats.restarts += 1;
                    since_restart = 0;
                    // Geometric schedule: each interval is half again longer.
                    restart_limit += restart_limit / 2;
                    self.backtrack(0);
                }
            } else if self.decision_level() < assumptions.len() {
                // Re-establish assumptions one decision level at a time.
                let p = assumptions[self.decision_level()];
                match self.lit_value(p) {
                    Assignment::True => self.trail_lim.push(self.trail.len()),
                    Assignment::False => {
                        self.backtrack(0);
                        return Some(SolveResult::Unsat);
                    }
                    Assignment::Open => {
                        self.trail_lim.push(self.trail.len());
                        self.assign(p, None);
                    }
                }
            } else {
                match self.pick_branch() {
                    None => {
                        let values = self
                            .values
                            .iter()
                            .map(|&v| v == Assignment::True)
                            .collect::<Vec<_>>();
                        self.model = Some(Model::from_values(values));
                        self.backtrack(0);
                        return Some(SolveResult::Sat);
                    }
                    Some(v) => {
                        self.stats.decisions += 1;
                        self.trail_lim.push(self.trail.len());
                        let lit = Lit::with_polarity(v, self.saved_phase[v.index()]);
                        self.assign(lit, None);
                    }
                }
            }
        }
    }

    /// The model of the most recent satisfiable query, if any.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }
}

impl crate::SatBackend for ScrewSolver {
    fn name(&self) -> &'static str {
        "screwsat"
    }

    fn new_var(&mut self) -> Var {
        ScrewSolver::new_var(self)
    }

    fn num_vars(&self) -> usize {
        ScrewSolver::num_vars(self)
    }

    fn num_clauses(&self) -> usize {
        ScrewSolver::num_clauses(self)
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        ScrewSolver::add_clause(self, lits)
    }

    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        ScrewSolver::solve_with_assumptions(self, assumptions)
    }

    fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        ScrewSolver::solve_limited(self, assumptions, max_conflicts)
    }

    fn model(&self) -> Option<&Model> {
        ScrewSolver::model(self)
    }

    fn stats(&self) -> SolverStats {
        ScrewSolver::stats(self)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn lit(s: &mut ScrewSolver, idx: usize, positive: bool) -> Lit {
        while s.num_vars() <= idx {
            s.new_var();
        }
        Lit::with_polarity(Var::from_index(idx), positive)
    }

    fn pigeonhole(holes: usize) -> ScrewSolver {
        let mut s = ScrewSolver::new();
        let p: Vec<Vec<Lit>> = (0..holes + 1)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row);
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    s.add_clause(&[!a, !b]);
                }
            }
        }
        s
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = ScrewSolver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().is_some());
    }

    #[test]
    fn unit_and_implication_chain() {
        let mut s = ScrewSolver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        let c = lit(&mut s, 2, true);
        s.add_clause(&[a]);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!b, c]);
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model().expect("sat");
        assert!(m.lit_value(a) && m.lit_value(b) && m.lit_value(c));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = ScrewSolver::new();
        let a = lit(&mut s, 0, true);
        assert!(s.add_clause(&[a]));
        assert!(!s.add_clause(&[!a]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_is_unsat() {
        let mut s = pigeonhole(4);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().conflicts > 0);
    }

    #[test]
    fn models_satisfy_every_clause() {
        // 3-coloring-style constraints with enough structure to force
        // conflicts before a model is found.
        let mut s = ScrewSolver::new();
        let n = 9;
        let v: Vec<Lit> = (0..n).map(|i| lit(&mut s, i, true)).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..n {
            clauses.push(vec![v[i], v[(i + 1) % n], !v[(i + 3) % n]]);
            clauses.push(vec![!v[i], !v[(i + 2) % n], v[(i + 5) % n]]);
        }
        for c in &clauses {
            s.add_clause(c);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model().expect("sat").clone();
        for c in &clauses {
            assert!(c.iter().any(|&l| m.lit_value(l)), "violated clause {c:?}");
        }
    }

    #[test]
    fn assumptions_constrain_and_are_forgotten() {
        let mut s = ScrewSolver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause(&[a, b]);
        assert_eq!(s.solve_with_assumptions(&[!a]), SolveResult::Sat);
        assert!(s.model().expect("sat").lit_value(b));
        assert_eq!(s.solve_with_assumptions(&[!a, !b]), SolveResult::Unsat);
        // The assumptions do not persist.
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn budget_interrupts_and_resumes() {
        let mut s = pigeonhole(5);
        let mut verdict = None;
        let mut rounds = 0;
        while verdict.is_none() {
            verdict = s.solve_limited(&[], 10);
            rounds += 1;
            assert!(rounds < 10_000, "runaway search");
        }
        assert_eq!(verdict, Some(SolveResult::Unsat));
        assert!(rounds > 1, "a 10-conflict budget should interrupt");
    }

    #[test]
    fn level_zero_conflicts_poison_the_solver() {
        let mut s = ScrewSolver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause(&[a, b]);
        s.add_clause(&[a, !b]);
        s.add_clause(&[!a, b]);
        s.add_clause(&[!a, !b]);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(!s.add_clause(&[a]));
    }

    #[test]
    fn determinism_same_formula_same_model() {
        let build = || {
            let mut s = ScrewSolver::new();
            let v: Vec<Lit> = (0..12).map(|i| lit(&mut s, i, true)).collect();
            for i in 0..12 {
                s.add_clause(&[v[i], !v[(i + 4) % 12], v[(i + 7) % 12]]);
            }
            s.add_clause(&[!v[0], !v[5]]);
            s
        };
        let mut s1 = build();
        let mut s2 = build();
        assert_eq!(s1.solve(), SolveResult::Sat);
        assert_eq!(s2.solve(), SolveResult::Sat);
        assert_eq!(s1.model(), s2.model());
        assert_eq!(s1.stats(), s2.stats());
    }
}
