//! Variables and literals.

use std::fmt;

/// A propositional variable, identified by a dense index.
///
/// Variables are created by [`Solver::new_var`](crate::Solver::new_var); the
/// index is internal but exposed for collection indexing.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Var(pub(crate) u32);

impl Var {
    /// Returns the dense index of the variable.
    pub fn index(self) -> usize {
        self.0 as usize
    }

    /// Constructs a variable from its dense index.
    ///
    /// Intended for testing and DIMACS import; using a variable that was not
    /// allocated by the target solver is an error.
    pub fn from_index(index: usize) -> Var {
        Var(index as u32)
    }
}

impl fmt::Display for Var {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "x{}", self.0 + 1)
    }
}

/// A literal: a variable or its negation.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, Var};
///
/// let v = Var::from_index(3);
/// let p = Lit::pos(v);
/// assert_eq!(!p, Lit::neg(v));
/// assert_eq!((!p).var(), v);
/// assert!(p.is_positive());
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub struct Lit(pub(crate) u32);

impl Lit {
    /// The positive literal of `var`.
    pub fn pos(var: Var) -> Lit {
        Lit(var.0 << 1)
    }

    /// The negative literal of `var`.
    pub fn neg(var: Var) -> Lit {
        Lit((var.0 << 1) | 1)
    }

    /// Builds a literal with an explicit polarity (`true` = positive).
    pub fn with_polarity(var: Var, positive: bool) -> Lit {
        if positive {
            Lit::pos(var)
        } else {
            Lit::neg(var)
        }
    }

    /// Returns the underlying variable.
    pub fn var(self) -> Var {
        Var(self.0 >> 1)
    }

    /// Returns `true` if the literal is the positive occurrence.
    pub fn is_positive(self) -> bool {
        self.0 & 1 == 0
    }

    /// Returns the dense code of the literal (used to index watch lists).
    pub(crate) fn code(self) -> usize {
        self.0 as usize
    }
}

impl std::ops::Not for Lit {
    type Output = Lit;

    fn not(self) -> Lit {
        Lit(self.0 ^ 1)
    }
}

impl fmt::Display for Lit {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.is_positive() {
            write!(f, "{}", self.var())
        } else {
            write!(f, "-{}", self.var())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn literal_polarity_and_negation() {
        let v = Var::from_index(7);
        let p = Lit::pos(v);
        let n = Lit::neg(v);
        assert_ne!(p, n);
        assert_eq!(!p, n);
        assert_eq!(!n, p);
        assert_eq!(p.var(), v);
        assert_eq!(n.var(), v);
        assert!(p.is_positive());
        assert!(!n.is_positive());
        assert_eq!(Lit::with_polarity(v, true), p);
        assert_eq!(Lit::with_polarity(v, false), n);
    }

    #[test]
    fn display_uses_one_based_names() {
        let v = Var::from_index(0);
        assert_eq!(Lit::pos(v).to_string(), "x1");
        assert_eq!(Lit::neg(v).to_string(), "-x1");
    }

    #[test]
    fn codes_are_dense() {
        let v0 = Var::from_index(0);
        let v1 = Var::from_index(1);
        assert_eq!(Lit::pos(v0).code(), 0);
        assert_eq!(Lit::neg(v0).code(), 1);
        assert_eq!(Lit::pos(v1).code(), 2);
        assert_eq!(Lit::neg(v1).code(), 3);
    }
}
