//! A self-contained CDCL SAT solver with encoding helpers.
//!
//! The deterministic fault-tolerant state-preparation synthesis of the paper
//! encodes verification- and correction-circuit synthesis as Boolean
//! satisfiability problems and solves them with Z3. All constraints involved
//! are purely propositional (XOR parities, cardinality bounds, guarded
//! implications), so this workspace replaces the external SMT solver with an
//! in-tree conflict-driven clause-learning (CDCL) SAT solver:
//!
//! * [`Solver`] — CDCL with two-watched-literal propagation, first-UIP clause
//!   learning, VSIDS-style activities, phase saving, Luby restarts and
//!   incremental solving under assumptions.
//! * [`Encoder`] — Tseitin gate encodings (AND/OR/XOR), parity constraints
//!   and sequential-counter cardinality constraints (optionally guarded by an
//!   activation literal), which is exactly the constraint vocabulary the
//!   synthesis encodings need.
//! * [`SatBackend`] — the pluggable-solver abstraction the synthesis engine
//!   is generic over, with the CDCL [`Solver`] as the default implementation
//!   and [`DimacsLoggingBackend`] as an instrumented, formula-exporting,
//!   model-cross-checking alternative. [`BackendChoice`] selects one at
//!   runtime.
//! * [`dimacs`] — DIMACS CNF import/export for debugging and testing.
//!
//! # Examples
//!
//! ```
//! use dftsp_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let model = solver.model().expect("satisfiable");
//! assert!(!model.value(a));
//! assert!(model.value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod dimacs;
mod encode;
mod lit;
mod solver;

pub use backend::{BackendChoice, DimacsLoggingBackend, QueryRecord, SatBackend};
pub use encode::Encoder;
pub use lit::{Lit, Var};
pub use solver::{Model, SolveResult, Solver, SolverStats};
