//! A self-contained CDCL SAT solver with encoding helpers.
//!
//! The deterministic fault-tolerant state-preparation synthesis of the paper
//! encodes verification- and correction-circuit synthesis as Boolean
//! satisfiability problems and solves them with Z3. All constraints involved
//! are purely propositional (XOR parities, cardinality bounds, guarded
//! implications), so this workspace replaces the external SMT solver with an
//! in-tree conflict-driven clause-learning (CDCL) SAT solver:
//!
//! * [`Solver`] — CDCL with two-watched-literal propagation (blocker
//!   literals plus a dedicated binary-clause path), first-UIP clause learning
//!   with recursive minimization, an indexed VSIDS decision heap with
//!   deterministic tie-breaking, LBD-driven learned-clause database
//!   reduction, phase saving, Luby restarts and incremental solving under
//!   assumptions. [`SolverConfig`] tunes the heuristics;
//!   [`SolverConfig::reference`] is the heuristics-disabled baseline kept for
//!   cross-checking and benchmarking.
//! * [`Encoder`] — Tseitin gate encodings (AND/OR/XOR), parity constraints
//!   and sequential-counter cardinality constraints (optionally guarded by an
//!   activation literal, or retractable via
//!   [`Encoder::at_most_k_retractable`]), which is exactly the constraint
//!   vocabulary the synthesis encodings need.
//! * [`SatBackend`] — the pluggable-solver abstraction the synthesis engine
//!   is generic over, with the CDCL [`Solver`] as the default implementation
//!   and [`DimacsLoggingBackend`] as an instrumented, formula-exporting,
//!   model-cross-checking alternative. [`BackendChoice`] selects one at
//!   runtime. The trait also carries the guard-literal lifecycle
//!   ([`SatBackend::new_guard`] / [`SatBackend::release_guard`]) that makes
//!   constraints retractable.
//! * [`IncrementalSession`] — a live solver owned for a whole optimization
//!   ladder: the base encoding is built once, tightened cardinality bounds
//!   are installed behind fresh guards, and learned clauses survive between
//!   bounds. [`ReuseStats`] reports how much work the warm solver saved, and
//!   [`LadderMode`] selects between this incremental driving and the
//!   fresh-backend-per-query path kept for cross-checking.
//! * [`dimacs`] — DIMACS CNF import/export for debugging and testing.
//!
//! # Backend selection & portfolio
//!
//! [`BackendChoice`] names every way the pipeline can answer a SAT query:
//!
//! | Choice | Engine | Use |
//! |---|---|---|
//! | [`BackendChoice::Cdcl`] | tuned [`Solver`] | the default |
//! | [`BackendChoice::CdclReference`] | [`Solver`], heuristics off | benchmark & cross-check baseline |
//! | [`BackendChoice::Screwsat`] | [`ScrewSolver`] | independent second implementation |
//! | [`BackendChoice::DimacsLogging`] | wrapped [`Solver`] | formula export, model validation |
//! | [`BackendChoice::Portfolio`] | several of the above | racing / cross-checking |
//!
//! The portfolio ([`PortfolioBackend`], configured by [`PortfolioConfig`])
//! runs its members against each other. In the default *racing* mode
//! ([`PortfolioConfig::racing`], i.e. [`BackendChoice::portfolio`]) every
//! query is raced on scoped threads in conflict-budget chunks; the first
//! finisher cancels the rest and the winner is chosen deterministically by a
//! fixed lane priority ([`PortfolioLane`]). Verdicts are deterministic —
//! all finishers must agree, and each engine is sound and complete — but
//! the *model* of a raced SAT query belongs to whichever engine happened to
//! win, so racing callers that need reproducible artifacts re-extract final
//! solutions on [`BackendChoice::canonical`] (the synthesis pipeline does
//! this; its reports are bit-identical no matter which engine wins). The
//! *checked* mode ([`PortfolioConfig::checked`]) instead runs every member
//! to completion and panics on any verdict disagreement — slow, bit-identical
//! to the primary member alone, and kept wired into the test suites and CI
//! as a standing correctness oracle. Per-lane attribution (wins, losses,
//! cancelled conflicts, per-backend time) is reported via
//! [`SatBackend::portfolio_stats`] as [`PortfolioStats`].
//!
//! Small formulas skip the race entirely and run the primary engine inline
//! (see [`portfolio::RACE_MIN_CLAUSES`]); combined with the adaptive
//! heuristics selection ([`SolverConfig::adaptive`]) this keeps the paper's
//! small codes free of both scheduling and bookkeeping overhead.
//!
//! # Guarded incremental solving
//!
//! ```
//! use dftsp_sat::{IncrementalSession, Lit, SolveResult, Solver};
//!
//! let mut session = IncrementalSession::new(Solver::new());
//! let lits: Vec<Lit> = (0..3).map(|_| Lit::pos(session.backend_mut().new_var())).collect();
//! session.add_clause(&lits); // at least one true
//! let bound = session.bound_at_most_k(&lits, 0); // guarded: none true
//! assert_eq!(session.solve(None), Some(SolveResult::Unsat));
//! session.release_guard(bound); // retract the bound, keep learned clauses
//! assert_eq!(session.solve(None), Some(SolveResult::Sat));
//! ```
//!
//! # Examples
//!
//! ```
//! use dftsp_sat::{Lit, SolveResult, Solver};
//!
//! let mut solver = Solver::new();
//! let a = solver.new_var();
//! let b = solver.new_var();
//! solver.add_clause([Lit::pos(a), Lit::pos(b)]);
//! solver.add_clause([Lit::neg(a)]);
//! assert_eq!(solver.solve(), SolveResult::Sat);
//! let model = solver.model().expect("satisfiable");
//! assert!(!model.value(a));
//! assert!(model.value(b));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod backend;
pub mod dimacs;
mod encode;
mod incremental;
mod lit;
pub mod portfolio;
mod screwsat;
mod solver;

pub use backend::{BackendChoice, DimacsLoggingBackend, LadderMode, QueryRecord, SatBackend};
pub use dimacs::ParseDimacsError;
pub use encode::Encoder;
pub use incremental::{BoundedLadder, IncrementalSession, ReuseStats};
pub use lit::{Lit, Var};
pub use portfolio::{LaneStats, PortfolioBackend, PortfolioConfig, PortfolioLane, PortfolioStats};
pub use screwsat::ScrewSolver;
pub use solver::{Model, SolveResult, Solver, SolverConfig, SolverStats, ADAPTIVE_CLAUSE_CEILING};
