//! Deterministic portfolio racing and cross-checking across SAT backends.
//!
//! A [`PortfolioBackend`] holds several independent solver engines, feeds
//! every clause to all of them, and answers each query in one of two modes:
//!
//! * **Racing** (the default): the members run the query concurrently on
//!   scoped threads, each in short conflict-budget chunks so it can observe a
//!   shared stop flag; the first finisher cancels the rest. The *winner* is
//!   selected deterministically — among the members that produced a verdict,
//!   the one earliest in the fixed [`PortfolioLane`] priority order — and
//!   every pair of finishers is required to agree on the verdict (a free
//!   cross-check on every raced query). Which engine wins a race is
//!   timing-dependent, so the *model* handed out by a raced SAT query is not
//!   reproducible; the synthesis pipeline compensates by re-extracting final
//!   solutions on the canonical backend ([`crate::BackendChoice::canonical`])
//!   — verdicts, and therefore every optimization ladder's bounds, are
//!   model-independent.
//! * **Checked** ([`PortfolioConfig::checked`]): every member runs the query
//!   to completion sequentially and the backend panics on any verdict
//!   disagreement. The answer (and model) is always the primary member's, so
//!   a checked portfolio is bit-identical to running the primary alone —
//!   just slower, which is what makes it a standing correctness oracle for
//!   tests and CI.
//!
//! Queries on small formulas skip the race and run the primary inline
//! ([`RACE_MIN_CLAUSES`]): thread spawning costs more than the solve itself
//! at that scale, and the paper's small codes (Steane, Shor, Surface-3) live
//! entirely in that regime. Per-lane attribution (wins, losses, cancelled
//! conflicts, wall-clock time) is collected in [`PortfolioStats`].

use std::sync::atomic::{AtomicBool, Ordering};
use std::time::Instant;

use crate::{
    Lit, Model, SatBackend, ScrewSolver, SolveResult, Solver, SolverConfig, SolverStats, Var,
};

/// Formula-size floor (stored clauses) below which a racing portfolio
/// answers queries inline on the primary member instead of spawning threads.
pub const RACE_MIN_CLAUSES: usize = 1024;

/// Conflict-budget chunk raced members solve between checks of the shared
/// stop flag. Small enough to cancel losers promptly, large enough that the
/// atomic load is free compared to the search work in a chunk.
const RACE_CHUNK: u64 = 2048;

/// The engines a portfolio can employ, in fixed priority order: when several
/// members of a race finish, the one earliest in this order is the winner.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, PartialOrd, Ord)]
pub enum PortfolioLane {
    /// The tuned CDCL solver ([`crate::Solver`]); the canonical member.
    Cdcl = 0,
    /// The independent second solver ([`crate::ScrewSolver`]).
    Screwsat = 1,
    /// The heuristics-disabled CDCL baseline
    /// ([`crate::SolverConfig::reference`]).
    CdclReference = 2,
}

impl PortfolioLane {
    /// All lanes, in priority order.
    pub const ALL: [PortfolioLane; 3] = [
        PortfolioLane::Cdcl,
        PortfolioLane::Screwsat,
        PortfolioLane::CdclReference,
    ];

    /// Dense index of the lane (its position in [`PortfolioLane::ALL`]).
    pub fn index(self) -> usize {
        self as usize
    }

    /// Short human-readable lane name.
    pub fn name(self) -> &'static str {
        match self {
            PortfolioLane::Cdcl => "cdcl",
            PortfolioLane::Screwsat => "screwsat",
            PortfolioLane::CdclReference => "cdcl-ref",
        }
    }

    fn instantiate(self) -> Box<dyn SatBackend + Send> {
        match self {
            PortfolioLane::Cdcl => Box::new(Solver::new()),
            PortfolioLane::Screwsat => Box::new(ScrewSolver::new()),
            PortfolioLane::CdclReference => {
                Box::new(Solver::with_config(SolverConfig::reference()))
            }
        }
    }
}

/// Which engines a [`PortfolioBackend`] runs, and in which mode.
///
/// The configuration is a small copyable value so it can ride inside
/// [`crate::BackendChoice::Portfolio`] (which report caches hash and
/// fingerprint).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub struct PortfolioConfig {
    /// Bitmask over [`PortfolioLane`] indices.
    members: u8,
    checked: bool,
}

impl PortfolioConfig {
    /// The default racing portfolio: tuned CDCL raced against the
    /// independent second solver.
    pub fn racing() -> Self {
        PortfolioConfig {
            members: 0,
            checked: false,
        }
        .with_lane(PortfolioLane::Cdcl)
        .with_lane(PortfolioLane::Screwsat)
    }

    /// The cross-checking portfolio: every in-tree engine runs each query to
    /// completion and any verdict disagreement panics. Deterministic (the
    /// primary member's answers are used throughout) and slow — a
    /// correctness oracle, not a performance mode.
    pub fn checked() -> Self {
        let mut config = PortfolioConfig {
            members: 0,
            checked: true,
        };
        for lane in PortfolioLane::ALL {
            config = config.with_lane(lane);
        }
        config
    }

    /// Adds a lane to the member set.
    pub fn with_lane(mut self, lane: PortfolioLane) -> Self {
        self.members |= 1 << lane.index();
        self
    }

    /// Returns `true` if `lane` is a member.
    pub fn contains(self, lane: PortfolioLane) -> bool {
        self.members & (1 << lane.index()) != 0
    }

    /// The member lanes, in priority order.
    pub fn lanes(self) -> Vec<PortfolioLane> {
        PortfolioLane::ALL
            .into_iter()
            .filter(|&lane| self.contains(lane))
            .collect()
    }

    /// Returns `true` if this is the run-to-completion cross-check mode.
    pub fn is_checked(self) -> bool {
        self.checked
    }

    /// The primary (highest-priority) member lane. Its answers define the
    /// portfolio's deterministic behaviour: checked mode returns them
    /// directly, and racing mode re-canonicalizes through it.
    pub fn primary(self) -> PortfolioLane {
        self.lanes()
            .first()
            .copied()
            .expect("a portfolio has at least one member")
    }
}

impl Default for PortfolioConfig {
    fn default() -> Self {
        PortfolioConfig::racing()
    }
}

/// Attribution of one portfolio lane across the queries seen so far.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct LaneStats {
    /// Races (or solo/checked queries) this lane answered.
    pub wins: u64,
    /// Races another lane answered first (checked mode: completed queries
    /// whose answer the primary provided instead).
    pub losses: u64,
    /// Conflicts this lane spent on queries it lost — the cancelled work.
    pub cancelled_conflicts: u64,
    /// Wall-clock microseconds this lane spent solving.
    pub time_us: u64,
}

impl LaneStats {
    fn absorb(&mut self, other: &LaneStats) {
        self.wins += other.wins;
        self.losses += other.losses;
        self.cancelled_conflicts += other.cancelled_conflicts;
        self.time_us += other.time_us;
    }

    fn since(&self, earlier: &LaneStats) -> LaneStats {
        LaneStats {
            wins: self.wins - earlier.wins,
            losses: self.losses - earlier.losses,
            cancelled_conflicts: self.cancelled_conflicts - earlier.cancelled_conflicts,
            time_us: self.time_us - earlier.time_us,
        }
    }
}

/// Per-backend attribution collected by a [`PortfolioBackend`].
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct PortfolioStats {
    /// Queries answered by an actual multi-engine race (or, in checked mode,
    /// a full cross-checked sweep).
    pub races: u64,
    /// Queries answered inline by the primary because the formula was below
    /// the racing floor.
    pub solo: u64,
    /// Per-lane attribution, indexed by [`PortfolioLane::index`].
    pub lanes: [LaneStats; PortfolioLane::ALL.len()],
}

impl PortfolioStats {
    /// Accumulates `other` into `self`.
    pub fn absorb(&mut self, other: &PortfolioStats) {
        self.races += other.races;
        self.solo += other.solo;
        for (mine, theirs) in self.lanes.iter_mut().zip(other.lanes.iter()) {
            mine.absorb(theirs);
        }
    }

    /// The delta accumulated since `earlier` (which must be a previous
    /// snapshot of the same counter set).
    pub fn since(&self, earlier: &PortfolioStats) -> PortfolioStats {
        let mut lanes = [LaneStats::default(); PortfolioLane::ALL.len()];
        for (i, lane) in lanes.iter_mut().enumerate() {
            *lane = self.lanes[i].since(&earlier.lanes[i]);
        }
        PortfolioStats {
            races: self.races - earlier.races,
            solo: self.solo - earlier.solo,
            lanes,
        }
    }

    /// The attribution of one lane.
    pub fn lane(&self, lane: PortfolioLane) -> &LaneStats {
        &self.lanes[lane.index()]
    }

    /// Returns `true` if no portfolio query has been recorded.
    pub fn is_empty(&self) -> bool {
        self.races == 0 && self.solo == 0
    }
}

impl std::fmt::Display for PortfolioStats {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "races={} solo={}", self.races, self.solo)?;
        for lane in PortfolioLane::ALL {
            let stats = self.lane(lane);
            if stats.wins == 0 && stats.losses == 0 && stats.time_us == 0 {
                continue;
            }
            write!(
                f,
                " {}[wins={} losses={} cancelled={} time={}us]",
                lane.name(),
                stats.wins,
                stats.losses,
                stats.cancelled_conflicts,
                stats.time_us
            )?;
        }
        Ok(())
    }
}

/// The outcome one raced member reports back: its verdict (if it finished
/// inside the shared race), the conflicts it spent, and its wall-clock time.
struct LaneOutcome {
    verdict: Option<SolveResult>,
    conflicts: u64,
    time_us: u64,
}

/// A [`SatBackend`] that multiplexes several independent engines — see the
/// module docs for the racing and checked modes.
pub struct PortfolioBackend {
    config: PortfolioConfig,
    members: Vec<(PortfolioLane, Box<dyn SatBackend + Send>)>,
    model: Option<Model>,
    portfolio: PortfolioStats,
}

impl std::fmt::Debug for PortfolioBackend {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.debug_struct("PortfolioBackend")
            .field("config", &self.config)
            .field("portfolio", &self.portfolio)
            .finish_non_exhaustive()
    }
}

impl PortfolioBackend {
    /// Creates a portfolio with the given member set and mode.
    pub fn new(config: PortfolioConfig) -> Self {
        let members: Vec<_> = config
            .lanes()
            .into_iter()
            .map(|lane| (lane, lane.instantiate()))
            .collect();
        assert!(!members.is_empty(), "a portfolio needs at least one member");
        PortfolioBackend {
            config,
            members,
            model: None,
            portfolio: PortfolioStats::default(),
        }
    }

    /// The portfolio's configuration.
    pub fn config(&self) -> PortfolioConfig {
        self.config
    }

    /// The per-lane attribution accumulated so far.
    pub fn portfolio(&self) -> PortfolioStats {
        self.portfolio
    }

    /// Answers a query inline on the primary member, without threads.
    fn solve_solo(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        let start = Instant::now();
        let result = self.members[0].1.solve_limited(assumptions, max_conflicts);
        let lane = self.members[0].0.index();
        self.portfolio.solo += 1;
        self.portfolio.lanes[lane].wins += u64::from(result.is_some());
        self.portfolio.lanes[lane].time_us += start.elapsed().as_micros() as u64;
        self.model = match result {
            Some(SolveResult::Sat) => self.members[0].1.model().cloned(),
            _ => None,
        };
        result
    }

    /// Runs every member to completion sequentially and panics on verdict
    /// disagreement; the primary member's answer and model are returned.
    fn solve_checked(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        let mut outcomes: Vec<(PortfolioLane, Option<SolveResult>)> = Vec::new();
        for (lane, member) in self.members.iter_mut() {
            let start = Instant::now();
            let result = member.solve_limited(assumptions, max_conflicts);
            outcomes.push((*lane, result));
            self.portfolio.lanes[lane.index()].time_us += start.elapsed().as_micros() as u64;
        }
        self.portfolio.races += 1;
        let mut finished = outcomes
            .iter()
            .filter_map(|&(lane, r)| r.map(|v| (lane, v)));
        if let Some((first_lane, first_verdict)) = finished.next() {
            for (lane, verdict) in finished {
                assert_eq!(
                    first_verdict,
                    verdict,
                    "portfolio cross-check failed: {} says {:?} but {} says {:?}",
                    first_lane.name(),
                    first_verdict,
                    lane.name(),
                    verdict
                );
            }
        }
        for (i, &(lane, result)) in outcomes.iter().enumerate() {
            if result.is_some() {
                if i == 0 {
                    self.portfolio.lanes[lane.index()].wins += 1;
                } else {
                    self.portfolio.lanes[lane.index()].losses += 1;
                }
            }
        }
        let primary = outcomes[0].1;
        self.model = match primary {
            Some(SolveResult::Sat) => self.members[0].1.model().cloned(),
            _ => None,
        };
        primary
    }

    /// Races the members on scoped threads. Deterministic in the verdict
    /// (all finishers must agree), timing-dependent in which member's model
    /// is stored.
    fn solve_race(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        let stop = AtomicBool::new(false);
        let outcomes: Vec<LaneOutcome> = std::thread::scope(|scope| {
            let handles: Vec<_> = self
                .members
                .iter_mut()
                .map(|(_, member)| {
                    let stop = &stop;
                    scope.spawn(move || {
                        let start = Instant::now();
                        let conflicts_before = member.stats().conflicts;
                        let mut verdict = None;
                        let mut remaining = max_conflicts;
                        while !stop.load(Ordering::Acquire) && remaining > 0 {
                            let chunk = RACE_CHUNK.min(remaining);
                            match member.solve_limited(assumptions, chunk) {
                                Some(result) => {
                                    verdict = Some(result);
                                    stop.store(true, Ordering::Release);
                                    break;
                                }
                                None => remaining -= chunk,
                            }
                        }
                        LaneOutcome {
                            verdict,
                            conflicts: member.stats().conflicts - conflicts_before,
                            time_us: start.elapsed().as_micros() as u64,
                        }
                    })
                })
                .collect();
            handles
                .into_iter()
                .map(|h| h.join().expect("a portfolio member panicked"))
                .collect()
        });

        self.portfolio.races += 1;
        // Deterministic winner selection: the first member in priority order
        // that produced a verdict. All finishers must agree — a free
        // cross-check on every raced query.
        let mut winner: Option<(usize, SolveResult)> = None;
        for (i, outcome) in outcomes.iter().enumerate() {
            if let Some(verdict) = outcome.verdict {
                match winner {
                    None => winner = Some((i, verdict)),
                    Some((w, expected)) => assert_eq!(
                        expected,
                        verdict,
                        "portfolio members disagree: {} says {:?} but {} says {:?}",
                        self.members[w].0.name(),
                        expected,
                        self.members[i].0.name(),
                        verdict
                    ),
                }
            }
        }
        for (i, outcome) in outcomes.iter().enumerate() {
            let lane = &mut self.portfolio.lanes[self.members[i].0.index()];
            lane.time_us += outcome.time_us;
            match winner {
                Some((w, _)) if w == i => lane.wins += 1,
                Some(_) => {
                    lane.losses += 1;
                    lane.cancelled_conflicts += outcome.conflicts;
                }
                // Everybody exhausted the budget: no winner to attribute.
                None => {}
            }
        }
        match winner {
            Some((w, SolveResult::Sat)) => {
                self.model = self.members[w].1.model().cloned();
                Some(SolveResult::Sat)
            }
            Some((_, SolveResult::Unsat)) => {
                self.model = None;
                Some(SolveResult::Unsat)
            }
            None => {
                self.model = None;
                None
            }
        }
    }
}

impl SatBackend for PortfolioBackend {
    fn name(&self) -> &'static str {
        if self.config.is_checked() {
            "portfolio-checked"
        } else {
            "portfolio"
        }
    }

    fn new_var(&mut self) -> Var {
        let mut first: Option<Var> = None;
        for (_, member) in self.members.iter_mut() {
            let v = member.new_var();
            match first {
                None => first = Some(v),
                Some(f) => debug_assert_eq!(f, v, "member var counters diverged"),
            }
        }
        first.expect("a portfolio has at least one member")
    }

    fn num_vars(&self) -> usize {
        self.members[0].1.num_vars()
    }

    fn num_clauses(&self) -> usize {
        self.members[0].1.num_clauses()
    }

    fn add_clause(&mut self, lits: &[Lit]) -> bool {
        // No short-circuit: every member must see every clause, or a later
        // query would race engines holding different formulas.
        let mut ok = true;
        for (_, member) in self.members.iter_mut() {
            ok &= member.add_clause(lits);
        }
        ok
    }

    fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve always terminates with a result")
    }

    fn solve_limited(&mut self, assumptions: &[Lit], max_conflicts: u64) -> Option<SolveResult> {
        if self.config.is_checked() {
            self.solve_checked(assumptions, max_conflicts)
        } else if self.members.len() == 1 || self.members[0].1.num_clauses() < RACE_MIN_CLAUSES {
            self.solve_solo(assumptions, max_conflicts)
        } else {
            self.solve_race(assumptions, max_conflicts)
        }
    }

    fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }

    fn stats(&self) -> SolverStats {
        // Aggregate search work across the members; the peak database size
        // is a maximum, everything else sums.
        let mut total = SolverStats::default();
        for (_, member) in &self.members {
            let s = member.stats();
            total.decisions += s.decisions;
            total.propagations += s.propagations;
            total.conflicts += s.conflicts;
            total.learned_clauses += s.learned_clauses;
            total.restarts += s.restarts;
            total.reduced_clauses += s.reduced_clauses;
            total.minimized_literals += s.minimized_literals;
            total.peak_clause_db = total.peak_clause_db.max(s.peak_clause_db);
        }
        total
    }

    fn portfolio_stats(&self) -> Option<PortfolioStats> {
        Some(self.portfolio)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pigeonhole(backend: &mut dyn SatBackend, holes: usize) {
        let p: Vec<Vec<Lit>> = (0..holes + 1)
            .map(|_| (0..holes).map(|_| Lit::pos(backend.new_var())).collect())
            .collect();
        for row in &p {
            backend.add_clause(row);
        }
        for (i1, row1) in p.iter().enumerate() {
            for row2 in &p[i1 + 1..] {
                for (&a, &b) in row1.iter().zip(row2) {
                    backend.add_clause(&[!a, !b]);
                }
            }
        }
    }

    #[test]
    fn racing_portfolio_solves_sat_and_unsat() {
        let mut backend = PortfolioBackend::new(PortfolioConfig::racing());
        let a = backend.new_var();
        let b = backend.new_var();
        backend.add_clause(&[Lit::pos(a), Lit::pos(b)]);
        backend.add_clause(&[Lit::neg(a)]);
        assert_eq!(backend.solve(), SolveResult::Sat);
        let model = backend.model().expect("sat");
        assert!(!model.value(a));
        assert!(model.value(b));
        assert_eq!(
            backend.solve_with_assumptions(&[Lit::neg(b)]),
            SolveResult::Unsat
        );
        // Small formula: both queries went through the solo fast path.
        let stats = backend.portfolio_stats().expect("portfolio");
        assert_eq!(stats.solo, 2);
        assert_eq!(stats.races, 0);
        assert_eq!(stats.lane(PortfolioLane::Cdcl).wins, 2);
    }

    /// Benign satisfiable padding that pushes the stored-clause count past
    /// the racing floor without making the instance harder.
    fn pad_past_racing_floor(backend: &mut dyn SatBackend) {
        let pad: Vec<Var> = (0..40).map(|_| backend.new_var()).collect();
        for i in 0..40 {
            for j in 1..27 {
                backend.add_clause(&[Lit::pos(pad[i]), Lit::pos(pad[(i + j) % 40])]);
            }
        }
        assert!(backend.num_clauses() >= RACE_MIN_CLAUSES);
    }

    #[test]
    fn large_formulas_race_and_agree() {
        let mut backend = PortfolioBackend::new(PortfolioConfig::racing());
        // An easy unsatisfiable core plus enough padding to force real races.
        pigeonhole(&mut backend, 5);
        pad_past_racing_floor(&mut backend);
        assert_eq!(backend.solve(), SolveResult::Unsat);
        let stats = backend.portfolio_stats().expect("portfolio");
        assert_eq!(stats.races, 1);
        let wins: u64 = stats.lanes.iter().map(|l| l.wins).sum();
        assert_eq!(wins, 1, "exactly one lane wins a race");
    }

    #[test]
    fn raced_sat_models_satisfy_the_formula() {
        let mut backend = PortfolioBackend::new(PortfolioConfig::racing());
        // A satisfiable formula above the racing floor: a loose graph
        // 3-coloring-style instance padded with benign clauses.
        let vars: Vec<Var> = (0..60).map(|_| backend.new_var()).collect();
        let mut clauses: Vec<Vec<Lit>> = Vec::new();
        for i in 0..60 {
            for j in 1..20 {
                clauses.push(vec![
                    Lit::pos(vars[i]),
                    Lit::pos(vars[(i + j) % 60]),
                    Lit::neg(vars[(i + 2 * j) % 60]),
                ]);
            }
        }
        for c in &clauses {
            backend.add_clause(c);
        }
        assert!(backend.num_clauses() >= RACE_MIN_CLAUSES);
        assert_eq!(backend.solve(), SolveResult::Sat);
        let model = backend.model().expect("sat").clone();
        for c in &clauses {
            assert!(c.iter().any(|&l| model.lit_value(l)), "violated {c:?}");
        }
    }

    #[test]
    fn checked_portfolio_matches_the_primary_alone() {
        let mut checked = PortfolioBackend::new(PortfolioConfig::checked());
        let mut solo = Solver::new();
        pigeonhole(&mut checked, 5);
        pigeonhole(&mut solo, 5);
        assert_eq!(checked.solve(), SolveResult::Unsat);
        assert_eq!(SatBackend::solve(&mut solo), SolveResult::Unsat);
        let stats = checked.portfolio_stats().expect("portfolio");
        assert_eq!(stats.races, 1);
        assert_eq!(stats.lane(PortfolioLane::Cdcl).wins, 1);
        assert_eq!(stats.lane(PortfolioLane::Screwsat).losses, 1);
    }

    #[test]
    fn budget_exhaustion_returns_none_and_leaves_the_backend_usable() {
        let mut backend = PortfolioBackend::new(PortfolioConfig::racing());
        pigeonhole(&mut backend, 5);
        pad_past_racing_floor(&mut backend);
        assert_eq!(backend.solve_limited(&[], 1), None);
        assert_eq!(
            backend.solve_limited(&[], u64::MAX),
            Some(SolveResult::Unsat)
        );
    }

    #[test]
    fn config_round_trips_lanes() {
        let racing = PortfolioConfig::racing();
        assert!(racing.contains(PortfolioLane::Cdcl));
        assert!(racing.contains(PortfolioLane::Screwsat));
        assert!(!racing.contains(PortfolioLane::CdclReference));
        assert!(!racing.is_checked());
        assert_eq!(racing.primary(), PortfolioLane::Cdcl);

        let checked = PortfolioConfig::checked();
        assert_eq!(checked.lanes(), PortfolioLane::ALL.to_vec());
        assert!(checked.is_checked());
    }

    #[test]
    fn stats_absorb_and_since_are_inverse() {
        let mut lanes = [LaneStats::default(); 3];
        lanes[0].wins = 2;
        lanes[1].cancelled_conflicts = 40;
        let a = PortfolioStats {
            races: 3,
            solo: 1,
            lanes,
        };
        let mut delta_lanes = [LaneStats::default(); 3];
        delta_lanes[1] = LaneStats {
            wins: 0,
            losses: 2,
            cancelled_conflicts: 0,
            time_us: 17,
        };
        let delta = PortfolioStats {
            races: 2,
            solo: 0,
            lanes: delta_lanes,
        };
        let mut b = a;
        b.absorb(&delta);
        assert_eq!(b.since(&a), delta);
    }
}
