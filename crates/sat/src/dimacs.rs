//! DIMACS CNF import and export.
//!
//! The synthesis pipeline never touches DIMACS itself, but emitting the
//! generated formulas in the standard format makes them easy to inspect and
//! to cross-check against external solvers during development.

use std::fmt;

use crate::{Lit, Solver, Var};

/// Error produced when parsing a DIMACS CNF file fails.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ParseDimacsError {
    line: usize,
    message: String,
}

impl fmt::Display for ParseDimacsError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "dimacs parse error on line {}: {}",
            self.line, self.message
        )
    }
}

impl std::error::Error for ParseDimacsError {}

/// A plain CNF formula: a variable count and a list of clauses.
///
/// # Examples
///
/// ```
/// use dftsp_sat::dimacs::Cnf;
/// use dftsp_sat::SolveResult;
///
/// let cnf = Cnf::parse("p cnf 2 2\n1 2 0\n-1 0\n")?;
/// assert_eq!(cnf.num_vars, 2);
/// let (mut solver, vars) = cnf.to_solver();
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// assert!(solver.model().unwrap().value(vars[1]));
/// # Ok::<(), dftsp_sat::dimacs::ParseDimacsError>(())
/// ```
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct Cnf {
    /// Number of variables declared in the problem line.
    pub num_vars: usize,
    /// Clauses as signed, 1-based DIMACS literals.
    pub clauses: Vec<Vec<i64>>,
}

impl Cnf {
    /// Parses DIMACS CNF text.
    ///
    /// # Errors
    ///
    /// Returns an error for malformed problem lines, literals outside the
    /// declared variable range, or clauses not terminated by `0`.
    pub fn parse(text: &str) -> Result<Cnf, ParseDimacsError> {
        let mut num_vars = None;
        let mut clauses = Vec::new();
        let mut current = Vec::new();
        for (lineno, line) in text.lines().enumerate() {
            let line = line.trim();
            if line.is_empty() || line.starts_with('c') {
                continue;
            }
            if let Some(rest) = line.strip_prefix("p ") {
                let parts: Vec<&str> = rest.split_whitespace().collect();
                if parts.len() != 3 || parts[0] != "cnf" {
                    return Err(ParseDimacsError {
                        line: lineno + 1,
                        message: "expected 'p cnf <vars> <clauses>'".into(),
                    });
                }
                let nv = parts[1].parse::<usize>().map_err(|e| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad variable count: {e}"),
                })?;
                num_vars = Some(nv);
                continue;
            }
            for tok in line.split_whitespace() {
                let lit: i64 = tok.parse().map_err(|e| ParseDimacsError {
                    line: lineno + 1,
                    message: format!("bad literal '{tok}': {e}"),
                })?;
                if lit == 0 {
                    clauses.push(std::mem::take(&mut current));
                } else {
                    let nv = num_vars.ok_or_else(|| ParseDimacsError {
                        line: lineno + 1,
                        message: "clause before problem line".into(),
                    })?;
                    if lit.unsigned_abs() as usize > nv {
                        return Err(ParseDimacsError {
                            line: lineno + 1,
                            message: format!("literal {lit} exceeds variable count {nv}"),
                        });
                    }
                    current.push(lit);
                }
            }
        }
        if !current.is_empty() {
            return Err(ParseDimacsError {
                line: text.lines().count(),
                message: "last clause not terminated by 0".into(),
            });
        }
        Ok(Cnf {
            num_vars: num_vars.unwrap_or(0),
            clauses,
        })
    }

    /// Renders the formula as DIMACS text.
    pub fn to_dimacs(&self) -> String {
        let mut out = format!("p cnf {} {}\n", self.num_vars, self.clauses.len());
        for clause in &self.clauses {
            for lit in clause {
                out.push_str(&lit.to_string());
                out.push(' ');
            }
            out.push_str("0\n");
        }
        out
    }

    /// Builds a [`Solver`] loaded with this formula, returning the solver and
    /// the variables corresponding to DIMACS indices `1..=num_vars` (at
    /// position `i - 1`).
    pub fn to_solver(&self) -> (Solver, Vec<Var>) {
        let mut solver = Solver::new();
        let vars: Vec<Var> = (0..self.num_vars).map(|_| solver.new_var()).collect();
        for clause in &self.clauses {
            let lits: Vec<Lit> = clause
                .iter()
                .map(|&l| Lit::with_polarity(vars[(l.unsigned_abs() - 1) as usize], l > 0))
                .collect();
            solver.add_clause(lits);
        }
        (solver, vars)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::SolveResult;

    #[test]
    fn parse_simple_formula() {
        let cnf = Cnf::parse("c comment\np cnf 3 2\n1 -2 0\n2 3 0\n").unwrap();
        assert_eq!(cnf.num_vars, 3);
        assert_eq!(cnf.clauses, vec![vec![1, -2], vec![2, 3]]);
    }

    #[test]
    fn roundtrip_through_text() {
        let cnf = Cnf {
            num_vars: 2,
            clauses: vec![vec![1, 2], vec![-1]],
        };
        let text = cnf.to_dimacs();
        let parsed = Cnf::parse(&text).unwrap();
        assert_eq!(parsed, cnf);
    }

    #[test]
    fn parse_errors() {
        assert!(Cnf::parse("p cnf x 2\n").is_err());
        assert!(Cnf::parse("1 2 0\n").is_err());
        assert!(Cnf::parse("p cnf 1 1\n5 0\n").is_err());
        assert!(Cnf::parse("p cnf 2 1\n1 2\n").is_err());
        assert!(Cnf::parse("p dnf 2 1\n1 0\n").is_err());
    }

    #[test]
    fn solver_roundtrip_sat_and_unsat() {
        let sat = Cnf::parse("p cnf 2 2\n1 2 0\n-1 0\n").unwrap();
        let (mut s, vars) = sat.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap().value(vars[1]));

        let unsat = Cnf::parse("p cnf 1 2\n1 0\n-1 0\n").unwrap();
        let (mut s, _) = unsat.to_solver();
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn empty_formula() {
        let cnf = Cnf::parse("").unwrap();
        assert_eq!(cnf.num_vars, 0);
        let (mut s, _) = cnf.to_solver();
        assert_eq!(s.solve(), SolveResult::Sat);
    }
}
