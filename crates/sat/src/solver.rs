//! Conflict-driven clause-learning SAT solver.

use std::fmt;

use crate::{Lit, Var};

/// Result of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; retrieve it with
    /// [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Truth value of a variable during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// A satisfying assignment extracted after a successful solve.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let v = s.new_var();
/// s.add_clause([Lit::pos(v)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model().expect("sat").value(v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Returns the value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not part of the solved formula.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Returns the truth value of a literal under the model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }
}

/// Search statistics collected during solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses added.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} conflicts={} learned={} restarts={}",
            self.decisions, self.propagations, self.conflicts, self.learned_clauses, self.restarts
        )
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
}

/// A CDCL SAT solver.
///
/// Features: two-watched-literal propagation, first-UIP conflict analysis
/// with clause learning and backjumping, VSIDS-style variable activities with
/// phase saving, Luby-sequence restarts and incremental solving under
/// assumptions. Decision variables are selected by a linear activity scan,
/// which is ample for the problem sizes produced by the synthesis encodings
/// (hundreds of variables).
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let vars: Vec<_> = (0..3).map(|_| s.new_var()).collect();
/// // x0 ∨ x1, ¬x0 ∨ x2, ¬x1 ∨ x2, ¬x2  ⇒ unsatisfiable together with x2's
/// // implications? Not quite: check with the solver.
/// s.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1])]);
/// s.add_clause([Lit::neg(vars[0]), Lit::pos(vars[2])]);
/// s.add_clause([Lit::neg(vars[1]), Lit::pos(vars[2])]);
/// s.add_clause([Lit::neg(vars[2])]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    clauses: Vec<Clause>,
    /// For each literal code, the clauses in which that literal is watched.
    watches: Vec<Vec<usize>>,
    assign: Vec<LBool>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    ok: bool,
    model: Option<Model>,
    stats: SolverStats,
    seen: Vec<bool>,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with no variables or clauses.
    pub fn new() -> Self {
        Solver {
            clauses: Vec::new(),
            watches: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            ok: true,
            model: None,
            stats: SolverStats::default(),
            seen: Vec::new(),
        }
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(false);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        v
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Returns the number of clauses currently stored (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the clause makes the formula trivially
    /// unsatisfiable (e.g. the empty clause, or a unit clause contradicting a
    /// previously derived fact); the solver then reports
    /// [`SolveResult::Unsat`] from all future queries.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was not allocated with
    /// [`Solver::new_var`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        // Clause database changes are only sound at decision level 0.
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} refers to an unallocated variable"
            );
        }
        lits.sort();
        lits.dedup();
        // Tautology check: both polarities of some variable present.
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        let mut filtered = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = self.clauses.len();
                self.watches[filtered[0].code()].push(idx);
                self.watches[filtered[1].code()].push(idx);
                self.clauses.push(Clause { lits: filtered });
                true
            }
        }
    }

    fn value(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail bound checked");
            let v = lit.var().index();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
        }
        self.trail_lim.truncate(level);
        self.qhead = self.trail.len().min(self.qhead).min(bound);
        self.qhead = bound.min(self.trail.len());
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let watch_list = std::mem::take(&mut self.watches[false_lit.code()]);
            let mut kept = Vec::with_capacity(watch_list.len());
            let mut conflict = None;
            for (pos, &ci) in watch_list.iter().enumerate() {
                if conflict.is_some() {
                    kept.extend_from_slice(&watch_list[pos..]);
                    break;
                }
                // Normalize so the falsified watch sits at index 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                if self.value(first) == LBool::True {
                    kept.push(ci);
                    continue;
                }
                // Look for a replacement watch.
                let mut replacement = None;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != LBool::False {
                        replacement = Some(k);
                        break;
                    }
                }
                if let Some(k) = replacement {
                    self.clauses[ci].lits.swap(1, k);
                    let new_watch = self.clauses[ci].lits[1];
                    self.watches[new_watch.code()].push(ci);
                } else {
                    // Clause is unit or conflicting.
                    kept.push(ci);
                    if self.value(first) == LBool::False {
                        conflict = Some(ci);
                        self.qhead = self.trail.len();
                    } else {
                        self.enqueue(first, Some(ci));
                    }
                }
            }
            self.watches[false_lit.code()].extend(kept);
            if let Some(ci) = conflict {
                return Some(ci);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        if self.activity[v] > 1e100 {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first) and the backjump level.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let mut to_clear = Vec::new();
        let current_level = self.decision_level();

        loop {
            let start = usize::from(p.is_some());
            let lits: Vec<Lit> = self.clauses[confl].lits[start..].to_vec();
            for q in lits {
                let v = q.var().index();
                if !self.seen[v] && self.level[v] > 0 {
                    self.seen[v] = true;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal that participates in the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = false;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()].expect("non-decision literal has a reason");
        }
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        // Backjump level: highest level among the non-asserting literals.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        for v in to_clear {
            self.seen[v] = false;
        }
        (learnt, backjump)
    }

    fn record_learned(&mut self, learnt: Vec<Lit>) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
        } else {
            let idx = self.clauses.len();
            self.watches[learnt[0].code()].push(idx);
            self.watches[learnt[1].code()].push(idx);
            let asserting = learnt[0];
            self.clauses.push(Clause { lits: learnt });
            self.enqueue(asserting, Some(idx));
        }
    }

    fn pick_branch_var(&self) -> Option<Var> {
        let mut best: Option<usize> = None;
        for v in 0..self.num_vars() {
            if self.assign[v] == LBool::Undef {
                match best {
                    None => best = Some(v),
                    Some(b) if self.activity[v] > self.activity[b] => best = Some(v),
                    _ => {}
                }
            }
        }
        best.map(|v| Var(v as u32))
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// The assumptions are treated as temporary unit clauses: they constrain
    /// this query only and are forgotten afterwards, enabling incremental
    /// use.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve always terminates with a result")
    }

    /// Solves with a conflict budget; returns `None` if the budget was
    /// exhausted before a result was established.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.model = None;
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption {l} refers to an unallocated variable"
            );
        }
        self.cancel_until(0);
        let mut conflicts_this_call = 0u64;
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = 64 * luby(restart_count + 1);

        loop {
            let conflict = self.propagate();
            match conflict {
                Some(ci) => {
                    self.stats.conflicts += 1;
                    conflicts_this_call += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                    let (learnt, backjump) = self.analyze(ci);
                    self.cancel_until(backjump);
                    self.record_learned(learnt);
                    self.decay_activities();
                    if conflicts_this_call >= max_conflicts {
                        self.cancel_until(0);
                        return None;
                    }
                    if conflicts_this_call >= conflicts_until_restart {
                        restart_count += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart =
                            conflicts_this_call + 64 * luby(restart_count + 1);
                        self.cancel_until(0);
                    }
                }
                None => {
                    // Re-establish assumptions one decision level at a time.
                    if self.decision_level() < assumptions.len() {
                        let p = assumptions[self.decision_level()];
                        match self.value(p) {
                            LBool::True => {
                                self.new_decision_level();
                            }
                            LBool::False => {
                                self.cancel_until(0);
                                return Some(SolveResult::Unsat);
                            }
                            LBool::Undef => {
                                self.new_decision_level();
                                self.enqueue(p, None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            // Every variable is assigned: extract the model.
                            let values = self
                                .assign
                                .iter()
                                .map(|&a| a == LBool::True)
                                .collect::<Vec<_>>();
                            self.model = Some(Model { values });
                            self.cancel_until(0);
                            return Some(SolveResult::Sat);
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            let lit = Lit::with_polarity(v, self.phase[v.index()]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Returns the model of the most recent successful [`Solver::solve`]
    /// call, or `None` if the last query was unsatisfiable or interrupted.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut size = 1u64;
    let mut seq = 0u64;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn lit(s: &mut Solver, idx: usize, positive: bool) -> Lit {
        while s.num_vars() <= idx {
            s.new_var();
        }
        Lit::with_polarity(Var::from_index(idx), positive)
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().is_some());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap().value(a));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a)]));
        assert!(!s.add_clause([Lit::neg(a)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.model().is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..20).map(|_| s.new_var()).collect();
        s.add_clause([Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model().unwrap().clone();
        assert!(vars.iter().all(|&v| m.value(v)));
    }

    #[test]
    fn unsat_triangle() {
        // (a∨b) (¬a∨b) (a∨¬b) (¬a∨¬b) is unsatisfiable.
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        s.add_clause([a, !b]);
        s.add_clause([!a, !b]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]),
            SolveResult::Unsat
        );
        // Without the assumptions the formula is satisfiable again.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SolveResult::Sat);
        assert!(s.model().unwrap().value(b));
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_unsat() {
        // Variables p[i][j] = pigeon i sits in hole j.
        let mut s = Solver::new();
        let p: Vec<Vec<Lit>> = (0..3)
            .map(|_| (0..2).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..2 {
            for i1 in 0..3 {
                for i2 in (i1 + 1)..3 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_five_pigeons_five_holes_sat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Every pigeon occupies at least one hole in the model.
        let m = s.model().unwrap().clone();
        for row in &p {
            assert!(row.iter().any(|&l| m.lit_value(l)));
        }
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30usize {
            let num_vars = 8 + round % 5;
            let num_clauses = 3 * num_vars;
            let mut s = Solver::new();
            let vars: Vec<_> = (0..num_vars).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::with_polarity(vars[rng.gen_range(0..num_vars)], rng.gen()))
                    .collect();
                clauses.push(clause.clone());
                s.add_clause(clause);
            }
            // Brute-force reference.
            let brute_sat = (0..(1u64 << num_vars)).any(|mask| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (mask >> l.var().index()) & 1 == 1;
                        val == l.is_positive()
                    })
                })
            });
            let result = s.solve();
            assert_eq!(result == SolveResult::Sat, brute_sat, "round {round}");
            if result == SolveResult::Sat {
                let m = s.model().unwrap();
                for c in &clauses {
                    assert!(c.iter().any(|&l| m.lit_value(l)));
                }
            }
        }
    }

    #[test]
    fn solve_limited_respects_budget() {
        // A hard pigeonhole instance with a tiny budget returns None.
        let mut s = Solver::new();
        let n = 8;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in (i1 + 1)..n + 1 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve_limited(&[], 5), None);
        // The solver remains usable afterwards.
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SolveResult::Unsat));
    }

    #[test]
    fn stats_are_collected() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(b), Lit::pos(a)]);
        s.solve();
        let stats = s.stats();
        assert!(stats.decisions + stats.propagations > 0);
        assert!(!stats.to_string().is_empty());
    }
}
