//! Conflict-driven clause-learning SAT solver.
//!
//! The solver implements the hot-path heuristics of modern CDCL solvers
//! (MiniSat/Glucose lineage) while staying fully deterministic, because the
//! synthesis pipeline's bit-reproducibility guarantees rest on every query
//! returning the same model on every run:
//!
//! * **Indexed VSIDS max-heap decisions** ([`VarOrder`]): branch variables
//!   are selected in O(log n) from an activity-ordered binary heap instead of
//!   a linear scan. Ties in activity are broken towards the *lowest* variable
//!   index, which makes the heap's maximum exactly the variable a
//!   first-strictly-greater linear scan would pick — heap and scan produce
//!   identical decision sequences, so models are reproducible across both.
//! * **Glucose-style learned-clause database reduction**: every learned
//!   clause carries its literal-block-distance (LBD — the number of distinct
//!   decision levels among its literals). Once the number of conflicts since
//!   the last reduction crosses a growing threshold, the worse half of the
//!   removable learned clauses (highest LBD, then longest, then newest; a
//!   deterministic total order) is deleted. "Glue" clauses (LBD ≤ 2), binary
//!   clauses, original problem clauses and clauses that are currently the
//!   *reason* of a trail literal are never removed, so long-lived incremental
//!   sessions keep their implication graph intact while shedding garbage.
//! * **Blocker literals and a dedicated binary-clause path**: each watch-list
//!   entry caches one other literal of its clause; when the blocker is
//!   already true the clause is skipped without touching its literal array.
//!   Binary clauses live in their own flat watch lists of `(other literal,
//!   clause index)` pairs and propagate without any clause dereference at
//!   all, which removes most of the propagation cache misses.
//! * **Recursive learned-clause minimization**: after first-UIP analysis,
//!   literals whose reason antecedents are entirely subsumed by the remaining
//!   clause (checked by a depth-first walk of the implication graph) are
//!   removed, shortening learned clauses before they enter the database.
//!
//! Phase saving, Luby restarts and assumption-based incremental solving are
//! unchanged from the classic design. All heuristics are controlled by
//! [`SolverConfig`]; [`SolverConfig::reference`] disables them (linear
//! decision scan, no reduction, no minimization) and is kept as a
//! cross-checking and benchmarking baseline — it must always agree with the
//! tuned configuration on SAT/UNSAT verdicts. With [`SolverConfig::adaptive`]
//! (on by default) the heap decisions and the database reduction are
//! additionally switched off per query on small variable-heavy formulas,
//! where their bookkeeping costs more than it saves; the selection is a pure
//! function of the formula, so it never costs determinism.
//!
//! # Determinism guarantees
//!
//! The solver uses no randomness and no pointer-identity-dependent ordering:
//! decisions break activity ties by lowest variable index, clause-database
//! reduction orders removal candidates by `(LBD, length, clause index)`, and
//! watch lists are rebuilt in clause-index order after a reduction. Two
//! solves of the same clause stream therefore produce identical models,
//! statistics and learned-clause histories on every platform.

use std::fmt;

use crate::{Lit, Var};

/// Result of a SAT query.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash)]
pub enum SolveResult {
    /// A satisfying assignment was found; retrieve it with
    /// [`Solver::model`].
    Sat,
    /// The formula (under the given assumptions) is unsatisfiable.
    Unsat,
}

/// Truth value of a variable during search.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum LBool {
    True,
    False,
    Undef,
}

/// A satisfying assignment extracted after a successful solve.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let v = s.new_var();
/// s.add_clause([Lit::pos(v)]);
/// assert_eq!(s.solve(), SolveResult::Sat);
/// assert!(s.model().expect("sat").value(v));
/// ```
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Model {
    values: Vec<bool>,
}

impl Model {
    /// Returns the value assigned to `var`.
    ///
    /// # Panics
    ///
    /// Panics if the variable was not part of the solved formula.
    pub fn value(&self, var: Var) -> bool {
        self.values[var.index()]
    }

    /// Returns the truth value of a literal under the model.
    pub fn lit_value(&self, lit: Lit) -> bool {
        self.value(lit.var()) == lit.is_positive()
    }

    /// Number of variables covered by the model.
    pub fn len(&self) -> usize {
        self.values.len()
    }

    /// Returns `true` if the model covers no variables.
    pub fn is_empty(&self) -> bool {
        self.values.is_empty()
    }

    /// Builds a model from raw per-variable values (index order). Used by
    /// the other in-tree backends; the public way to obtain a model is
    /// solving.
    pub(crate) fn from_values(values: Vec<bool>) -> Model {
        Model { values }
    }
}

/// Search statistics collected during solving.
#[derive(Debug, Clone, Copy, Default, PartialEq, Eq)]
pub struct SolverStats {
    /// Number of decisions made.
    pub decisions: u64,
    /// Number of unit propagations performed.
    pub propagations: u64,
    /// Number of conflicts encountered.
    pub conflicts: u64,
    /// Number of learned clauses added.
    pub learned_clauses: u64,
    /// Number of restarts performed.
    pub restarts: u64,
    /// Learned clauses deleted by LBD-driven clause-database reduction.
    pub reduced_clauses: u64,
    /// Largest clause-database size (original + learned) ever reached.
    pub peak_clause_db: u64,
    /// Literals removed from learned clauses by recursive minimization.
    pub minimized_literals: u64,
}

impl SolverStats {
    /// Unit propagations per decision — the classic measure of how much work
    /// each branch triggers. Returns 0 when no decision was made.
    pub fn propagations_per_decision(&self) -> f64 {
        if self.decisions == 0 {
            0.0
        } else {
            self.propagations as f64 / self.decisions as f64
        }
    }
}

impl fmt::Display for SolverStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "decisions={} propagations={} ({:.1}/decision) conflicts={} learned={} minimized={} reduced={} peak_db={} restarts={}",
            self.decisions,
            self.propagations,
            self.propagations_per_decision(),
            self.conflicts,
            self.learned_clauses,
            self.minimized_literals,
            self.reduced_clauses,
            self.peak_clause_db,
            self.restarts
        )
    }
}

/// Tuning knobs of the solver's search heuristics.
///
/// The default configuration enables every hot-path optimization; the
/// [`SolverConfig::reference`] configuration disables them all and reproduces
/// the behaviour of a plain first-UIP CDCL solver with a linear decision
/// scan. Both configurations always agree on SAT/UNSAT verdicts (a property
/// test enforces this); only search trajectories and runtimes differ.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct SolverConfig {
    /// Select decision variables from the indexed VSIDS max-heap instead of a
    /// linear activity scan. Both pick the same variable (highest activity,
    /// lowest index on ties); the heap does it in O(log n).
    pub heap_decisions: bool,
    /// Enable glucose-style LBD-driven learned-clause database reduction.
    pub clause_db_reduction: bool,
    /// Enable recursive learned-clause minimization after conflict analysis.
    pub minimize_learned: bool,
    /// Conflicts before the first clause-database reduction.
    pub reduce_base: u64,
    /// Increment added to the reduction interval after every reduction.
    pub reduce_increment: u64,
    /// Pick the decision/learning heuristics per query from the formula's
    /// variable and clause counts: on *small, variable-heavy* formulas
    /// (fewer than [`ADAPTIVE_CLAUSE_CEILING`] original clauses and fewer
    /// clauses than twice the variable count — the regime of the paper's
    /// small codes, where a query ends after a handful of conflicts) the
    /// heap decisions and the clause-database reduction are skipped for the
    /// solve, since their bookkeeping costs more than it saves there.
    /// Constraint-dense formulas (e.g. pigeonhole cores) and anything past
    /// the clause ceiling keep the full heuristics. The selection is a pure
    /// function of the clause stream, so determinism is unaffected, and
    /// heap and linear-scan decisions are identical by construction, so
    /// adaptation never changes a verdict.
    pub adaptive: bool,
}

/// Original-clause ceiling of [`SolverConfig::adaptive`]'s small-formula
/// regime.
pub const ADAPTIVE_CLAUSE_CEILING: usize = 1024;

impl Default for SolverConfig {
    fn default() -> Self {
        SolverConfig {
            heap_decisions: true,
            clause_db_reduction: true,
            minimize_learned: true,
            reduce_base: 2000,
            reduce_increment: 300,
            adaptive: true,
        }
    }
}

impl SolverConfig {
    /// The reference configuration: linear decision scan, no clause-database
    /// reduction, no learned-clause minimization. Kept as a cross-checking
    /// and benchmarking baseline for the tuned default. Note that the
    /// propagation-layer improvements (blocker literals and the dedicated
    /// binary-clause path) are structural and always on — this baseline
    /// isolates the decision/learning heuristics only.
    pub fn reference() -> Self {
        SolverConfig {
            heap_decisions: false,
            clause_db_reduction: false,
            minimize_learned: false,
            adaptive: false,
            ..SolverConfig::default()
        }
    }

    /// Returns `true` if this is the heuristics-disabled reference
    /// configuration.
    pub fn is_reference(&self) -> bool {
        !self.heap_decisions && !self.clause_db_reduction && !self.minimize_learned
    }
}

#[derive(Debug, Clone)]
struct Clause {
    lits: Vec<Lit>,
    /// Learned (as opposed to original problem) clause — only learned clauses
    /// are eligible for database reduction.
    learnt: bool,
    /// Literal block distance at learning time (0 for original clauses).
    lbd: u32,
}

/// One watch-list entry: the clause plus a cached *blocker* literal (some
/// other literal of the clause). If the blocker is already true the clause is
/// satisfied and propagation skips it without dereferencing the literal
/// array.
#[derive(Debug, Clone, Copy)]
struct Watcher {
    cref: u32,
    blocker: Lit,
}

/// Indexed binary max-heap over variables, ordered by VSIDS activity with
/// deterministic lowest-index tie-breaking. `position[v]` is the heap slot of
/// variable `v`, or -1 when the variable is not currently in the heap.
#[derive(Debug, Clone, Default)]
struct VarOrder {
    heap: Vec<u32>,
    position: Vec<i32>,
}

impl VarOrder {
    /// `true` if `a` should sit above `b`: strictly higher activity, or equal
    /// activity and lower index (matching a first-strictly-greater linear
    /// scan exactly).
    fn better(a: usize, b: usize, activity: &[f64]) -> bool {
        activity[a] > activity[b] || (activity[a] == activity[b] && a < b)
    }

    fn on_new_var(&mut self, activity: &[f64]) {
        self.position.push(-1);
        self.insert(self.position.len() - 1, activity);
    }

    fn insert(&mut self, v: usize, activity: &[f64]) {
        if self.position[v] >= 0 {
            return;
        }
        self.position[v] = self.heap.len() as i32;
        self.heap.push(v as u32);
        self.sift_up(self.heap.len() - 1, activity);
    }

    fn pop_max(&mut self, activity: &[f64]) -> Option<usize> {
        let top = *self.heap.first()? as usize;
        let last = self.heap.pop().expect("heap is non-empty");
        self.position[top] = -1;
        if !self.heap.is_empty() {
            self.heap[0] = last;
            self.position[last as usize] = 0;
            self.sift_down(0, activity);
        }
        Some(top)
    }

    /// Restores the heap property after `v`'s activity increased.
    fn rebump(&mut self, v: usize, activity: &[f64]) {
        if self.position[v] >= 0 {
            self.sift_up(self.position[v] as usize, activity);
        }
    }

    /// Re-establishes the heap property over the whole heap (bottom-up
    /// heapify). Needed after a global activity rescale: multiplication by
    /// the scale factor rounds, so two previously distinct activities can
    /// collapse to the same float and the lowest-index tie-break then
    /// demands a different order than the pre-rescale values did.
    fn reheapify(&mut self, activity: &[f64]) {
        for i in (0..self.heap.len() / 2).rev() {
            self.sift_down(i, activity);
        }
    }

    fn sift_up(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        while i > 0 {
            let parent = (i - 1) / 2;
            if Self::better(v as usize, self.heap[parent] as usize, activity) {
                self.heap[i] = self.heap[parent];
                self.position[self.heap[i] as usize] = i as i32;
                i = parent;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.position[v as usize] = i as i32;
    }

    fn sift_down(&mut self, mut i: usize, activity: &[f64]) {
        let v = self.heap[i];
        loop {
            let left = 2 * i + 1;
            if left >= self.heap.len() {
                break;
            }
            let right = left + 1;
            let child = if right < self.heap.len()
                && Self::better(
                    self.heap[right] as usize,
                    self.heap[left] as usize,
                    activity,
                ) {
                right
            } else {
                left
            };
            if Self::better(self.heap[child] as usize, v as usize, activity) {
                self.heap[i] = self.heap[child];
                self.position[self.heap[i] as usize] = i as i32;
                i = child;
            } else {
                break;
            }
        }
        self.heap[i] = v;
        self.position[v as usize] = i as i32;
    }
}

/// Marker states of the `seen` array during conflict analysis, following
/// MiniSat's recursive minimization: `SOURCE` marks literals of the learned
/// clause, `REMOVABLE`/`FAILED` cache minimization verdicts for visited
/// implication-graph nodes.
const SEEN_UNDEF: u8 = 0;
const SEEN_SOURCE: u8 = 1;
const SEEN_REMOVABLE: u8 = 2;
const SEEN_FAILED: u8 = 3;

/// A CDCL SAT solver.
///
/// Features: two-watched-literal propagation with blocker literals and a
/// dedicated binary-clause path, first-UIP conflict analysis with recursive
/// learned-clause minimization and backjumping, indexed VSIDS decision heap
/// with deterministic tie-breaking and phase saving, LBD-driven
/// learned-clause database reduction, Luby-sequence restarts and incremental
/// solving under assumptions. See the module docs for the design and the
/// determinism guarantees.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Lit, SolveResult, Solver};
///
/// let mut s = Solver::new();
/// let vars: Vec<_> = (0..3).map(|_| s.new_var()).collect();
/// s.add_clause([Lit::pos(vars[0]), Lit::pos(vars[1])]);
/// s.add_clause([Lit::neg(vars[0]), Lit::pos(vars[2])]);
/// s.add_clause([Lit::neg(vars[1]), Lit::pos(vars[2])]);
/// s.add_clause([Lit::neg(vars[2])]);
/// assert_eq!(s.solve(), SolveResult::Unsat);
/// ```
#[derive(Debug, Clone)]
pub struct Solver {
    config: SolverConfig,
    clauses: Vec<Clause>,
    /// For each literal code, the watchers of clauses (length > 2) in which
    /// that literal is watched.
    watches: Vec<Vec<Watcher>>,
    /// For each literal code, the binary clauses in which that literal is
    /// watched, as (other literal, clause index) pairs.
    binary: Vec<Vec<(Lit, u32)>>,
    assign: Vec<LBool>,
    level: Vec<usize>,
    reason: Vec<Option<usize>>,
    trail: Vec<Lit>,
    trail_lim: Vec<usize>,
    qhead: usize,
    activity: Vec<f64>,
    var_inc: f64,
    phase: Vec<bool>,
    ok: bool,
    model: Option<Model>,
    stats: SolverStats,
    seen: Vec<u8>,
    order: VarOrder,
    /// Scratch stamps for O(1) distinct-decision-level counting (LBD).
    lbd_stamp: Vec<u64>,
    lbd_counter: u64,
    /// Conflicts since the last clause-database reduction, and the threshold
    /// that triggers the next one.
    conflicts_since_reduce: u64,
    reduce_threshold: u64,
    /// Original (non-learned) stored clauses — the formula-size input of the
    /// adaptive heuristics selection.
    original_clauses: usize,
    /// Effective heuristic switches of the current solve, derived from the
    /// config and (when [`SolverConfig::adaptive`]) the formula size at
    /// query entry. Heap *maintenance* stays keyed on the structural
    /// `config.heap_decisions` — only decision *selection* adapts, which is
    /// safe because heap and linear scan pick identical variables.
    use_heap: bool,
    use_reduction: bool,
}

impl Default for Solver {
    fn default() -> Self {
        Self::new()
    }
}

impl Solver {
    /// Creates an empty solver with the default (tuned) configuration.
    pub fn new() -> Self {
        Solver::with_config(SolverConfig::default())
    }

    /// Creates an empty solver with an explicit heuristics configuration.
    pub fn with_config(config: SolverConfig) -> Self {
        Solver {
            config,
            clauses: Vec::new(),
            watches: Vec::new(),
            binary: Vec::new(),
            assign: Vec::new(),
            level: Vec::new(),
            reason: Vec::new(),
            trail: Vec::new(),
            trail_lim: Vec::new(),
            qhead: 0,
            activity: Vec::new(),
            var_inc: 1.0,
            phase: Vec::new(),
            ok: true,
            model: None,
            stats: SolverStats::default(),
            seen: Vec::new(),
            order: VarOrder::default(),
            lbd_stamp: vec![0],
            lbd_counter: 0,
            conflicts_since_reduce: 0,
            reduce_threshold: config.reduce_base,
            original_clauses: 0,
            use_heap: config.heap_decisions,
            use_reduction: config.clause_db_reduction,
        }
    }

    /// The active heuristics configuration.
    pub fn config(&self) -> &SolverConfig {
        &self.config
    }

    /// Allocates a fresh variable.
    pub fn new_var(&mut self) -> Var {
        let v = Var(self.assign.len() as u32);
        self.assign.push(LBool::Undef);
        self.level.push(0);
        self.reason.push(None);
        self.activity.push(0.0);
        self.phase.push(false);
        self.seen.push(SEEN_UNDEF);
        self.watches.push(Vec::new());
        self.watches.push(Vec::new());
        self.binary.push(Vec::new());
        self.binary.push(Vec::new());
        self.lbd_stamp.push(0);
        if self.config.heap_decisions {
            self.order.on_new_var(&self.activity);
        }
        v
    }

    /// Returns the number of allocated variables.
    pub fn num_vars(&self) -> usize {
        self.assign.len()
    }

    /// Returns the number of clauses currently stored (original + learned).
    pub fn num_clauses(&self) -> usize {
        self.clauses.len()
    }

    /// Returns the accumulated search statistics.
    pub fn stats(&self) -> SolverStats {
        self.stats
    }

    fn note_clause_added(&mut self) {
        self.stats.peak_clause_db = self.stats.peak_clause_db.max(self.clauses.len() as u64);
    }

    /// Registers `ci` in the watch structures appropriate for its length.
    /// The watched literals are `lits[0]` and `lits[1]`.
    fn watch_clause(&mut self, ci: usize) {
        let (a, b) = (self.clauses[ci].lits[0], self.clauses[ci].lits[1]);
        if self.clauses[ci].lits.len() == 2 {
            self.binary[a.code()].push((b, ci as u32));
            self.binary[b.code()].push((a, ci as u32));
        } else {
            self.watches[a.code()].push(Watcher {
                cref: ci as u32,
                blocker: b,
            });
            self.watches[b.code()].push(Watcher {
                cref: ci as u32,
                blocker: a,
            });
        }
    }

    /// Adds a clause (a disjunction of literals).
    ///
    /// Returns `false` if the clause makes the formula trivially
    /// unsatisfiable (e.g. the empty clause, or a unit clause contradicting a
    /// previously derived fact); the solver then reports
    /// [`SolveResult::Unsat`] from all future queries.
    ///
    /// # Panics
    ///
    /// Panics if a literal references a variable that was not allocated with
    /// [`Solver::new_var`].
    pub fn add_clause<I: IntoIterator<Item = Lit>>(&mut self, lits: I) -> bool {
        // Clause database changes are only sound at decision level 0.
        self.cancel_until(0);
        if !self.ok {
            return false;
        }
        let mut lits: Vec<Lit> = lits.into_iter().collect();
        for l in &lits {
            assert!(
                l.var().index() < self.num_vars(),
                "literal {l} refers to an unallocated variable"
            );
        }
        lits.sort();
        lits.dedup();
        // Tautology check: both polarities of some variable present.
        if lits.windows(2).any(|w| w[0].var() == w[1].var()) {
            return true;
        }
        // Remove literals already false at level 0; detect satisfied clauses.
        let mut filtered = Vec::with_capacity(lits.len());
        for &l in &lits {
            match self.value(l) {
                LBool::True => return true,
                LBool::False => {}
                LBool::Undef => filtered.push(l),
            }
        }
        match filtered.len() {
            0 => {
                self.ok = false;
                false
            }
            1 => {
                self.enqueue(filtered[0], None);
                if self.propagate().is_some() {
                    self.ok = false;
                }
                self.ok
            }
            _ => {
                let idx = self.clauses.len();
                self.clauses.push(Clause {
                    lits: filtered,
                    learnt: false,
                    lbd: 0,
                });
                self.original_clauses += 1;
                self.watch_clause(idx);
                self.note_clause_added();
                true
            }
        }
    }

    fn value(&self, lit: Lit) -> LBool {
        match self.assign[lit.var().index()] {
            LBool::Undef => LBool::Undef,
            LBool::True => {
                if lit.is_positive() {
                    LBool::True
                } else {
                    LBool::False
                }
            }
            LBool::False => {
                if lit.is_positive() {
                    LBool::False
                } else {
                    LBool::True
                }
            }
        }
    }

    fn decision_level(&self) -> usize {
        self.trail_lim.len()
    }

    fn enqueue(&mut self, lit: Lit, reason: Option<usize>) {
        debug_assert_eq!(self.value(lit), LBool::Undef);
        let v = lit.var().index();
        self.assign[v] = if lit.is_positive() {
            LBool::True
        } else {
            LBool::False
        };
        self.level[v] = self.decision_level();
        self.reason[v] = reason;
        self.phase[v] = lit.is_positive();
        self.trail.push(lit);
    }

    fn new_decision_level(&mut self) {
        self.trail_lim.push(self.trail.len());
    }

    fn cancel_until(&mut self, level: usize) {
        if self.decision_level() <= level {
            return;
        }
        let bound = self.trail_lim[level];
        while self.trail.len() > bound {
            let lit = self.trail.pop().expect("trail bound checked");
            let v = lit.var().index();
            self.assign[v] = LBool::Undef;
            self.reason[v] = None;
            if self.config.heap_decisions {
                self.order.insert(v, &self.activity);
            }
        }
        self.trail_lim.truncate(level);
        self.qhead = bound;
    }

    /// Unit propagation; returns the index of a conflicting clause, if any.
    fn propagate(&mut self) -> Option<usize> {
        while self.qhead < self.trail.len() {
            let p = self.trail[self.qhead];
            self.qhead += 1;
            self.stats.propagations += 1;
            let false_lit = !p;
            let fc = false_lit.code();

            // Dedicated binary path: no watch moves, no clause dereference.
            for i in 0..self.binary[fc].len() {
                let (other, cref) = self.binary[fc][i];
                match self.value(other) {
                    LBool::True => {}
                    LBool::Undef => {
                        let ci = cref as usize;
                        // Keep the reason invariant: lits[0] of a reason
                        // clause is the literal it implies.
                        if self.clauses[ci].lits[0] != other {
                            self.clauses[ci].lits.swap(0, 1);
                        }
                        self.enqueue(other, Some(ci));
                    }
                    LBool::False => {
                        self.qhead = self.trail.len();
                        return Some(cref as usize);
                    }
                }
            }

            // Long clauses: in-place watch-list editing with blockers.
            let mut i = 0;
            let mut j = 0;
            let len = self.watches[fc].len();
            let mut conflict = None;
            while i < len {
                let w = self.watches[fc][i];
                i += 1;
                // Blocker already true: the clause is satisfied, keep the
                // watcher without touching the clause.
                if self.value(w.blocker) == LBool::True {
                    self.watches[fc][j] = w;
                    j += 1;
                    continue;
                }
                let ci = w.cref as usize;
                // Normalize so the falsified watch sits at index 1.
                if self.clauses[ci].lits[0] == false_lit {
                    self.clauses[ci].lits.swap(0, 1);
                }
                debug_assert_eq!(self.clauses[ci].lits[1], false_lit);
                let first = self.clauses[ci].lits[0];
                let w = Watcher {
                    cref: w.cref,
                    blocker: first,
                };
                if self.value(first) == LBool::True {
                    self.watches[fc][j] = w;
                    j += 1;
                    continue;
                }
                // Look for a replacement watch.
                let mut replacement = None;
                for k in 2..self.clauses[ci].lits.len() {
                    if self.value(self.clauses[ci].lits[k]) != LBool::False {
                        replacement = Some(k);
                        break;
                    }
                }
                if let Some(k) = replacement {
                    self.clauses[ci].lits.swap(1, k);
                    let new_watch = self.clauses[ci].lits[1];
                    self.watches[new_watch.code()].push(w);
                } else {
                    // Clause is unit or conflicting.
                    self.watches[fc][j] = w;
                    j += 1;
                    if self.value(first) == LBool::False {
                        conflict = Some(ci);
                        self.qhead = self.trail.len();
                        // Keep the unprocessed suffix of the watch list.
                        while i < len {
                            self.watches[fc][j] = self.watches[fc][i];
                            i += 1;
                            j += 1;
                        }
                        break;
                    }
                    self.enqueue(first, Some(ci));
                }
            }
            self.watches[fc].truncate(j);
            if let Some(ci) = conflict {
                return Some(ci);
            }
        }
        None
    }

    fn bump_var(&mut self, v: usize) {
        self.activity[v] += self.var_inc;
        let rescaled = self.activity[v] > 1e100;
        if rescaled {
            for a in &mut self.activity {
                *a *= 1e-100;
            }
            self.var_inc *= 1e-100;
        }
        // The reference configuration never reads the heap; skipping its
        // maintenance keeps the benchmark baseline free of dead work.
        if self.config.heap_decisions {
            if rescaled {
                // Rescaling rounds and can collapse distinct activities to
                // equal floats, where the tie-break flips the required
                // order — rebuild the heap under the new values.
                self.order.reheapify(&self.activity);
            }
            self.order.rebump(v, &self.activity);
        }
    }

    fn decay_activities(&mut self) {
        self.var_inc /= 0.95;
    }

    /// Number of distinct decision levels among `lits` (the literal block
    /// distance of a learned clause).
    fn compute_lbd(&mut self, lits: &[Lit]) -> u32 {
        self.lbd_counter += 1;
        let mut lbd = 0;
        for &l in lits {
            let lvl = self.level[l.var().index()];
            // Duplicate assumptions can open empty decision levels and push
            // levels past the variable count; grow the stamp table on demand.
            if lvl >= self.lbd_stamp.len() {
                self.lbd_stamp.resize(lvl + 1, 0);
            }
            if self.lbd_stamp[lvl] != self.lbd_counter {
                self.lbd_stamp[lvl] = self.lbd_counter;
                lbd += 1;
            }
        }
        lbd
    }

    /// First-UIP conflict analysis. Returns the learned clause (asserting
    /// literal first), the backjump level, and the clause's LBD.
    fn analyze(&mut self, conflict: usize) -> (Vec<Lit>, usize, u32) {
        let mut learnt: Vec<Lit> = vec![Lit(0)]; // placeholder for the asserting literal
        let mut counter = 0usize;
        let mut p: Option<Lit> = None;
        let mut confl = conflict;
        let mut index = self.trail.len();
        let mut to_clear = Vec::new();
        let current_level = self.decision_level();

        loop {
            // Visit the clause literals in place (borrow-split via indexed
            // re-borrows) — no per-conflict-step allocation.
            let start = usize::from(p.is_some());
            for k in start..self.clauses[confl].lits.len() {
                let q = self.clauses[confl].lits[k];
                let v = q.var().index();
                if self.seen[v] == SEEN_UNDEF && self.level[v] > 0 {
                    self.seen[v] = SEEN_SOURCE;
                    to_clear.push(v);
                    self.bump_var(v);
                    if self.level[v] >= current_level {
                        counter += 1;
                    } else {
                        learnt.push(q);
                    }
                }
            }
            // Pick the next trail literal that participates in the conflict.
            loop {
                index -= 1;
                if self.seen[self.trail[index].var().index()] != SEEN_UNDEF {
                    break;
                }
            }
            let lit = self.trail[index];
            p = Some(lit);
            self.seen[lit.var().index()] = SEEN_UNDEF;
            counter -= 1;
            if counter == 0 {
                break;
            }
            confl = self.reason[lit.var().index()].expect("non-decision literal has a reason");
        }
        learnt[0] = !p.expect("conflict analysis visits at least one literal");

        if self.config.minimize_learned {
            self.minimize_learnt(&mut learnt, &mut to_clear);
        }

        // Backjump level: highest level among the non-asserting literals.
        let backjump = if learnt.len() == 1 {
            0
        } else {
            let mut max_i = 1;
            for i in 2..learnt.len() {
                if self.level[learnt[i].var().index()] > self.level[learnt[max_i].var().index()] {
                    max_i = i;
                }
            }
            learnt.swap(1, max_i);
            self.level[learnt[1].var().index()]
        };

        let lbd = self.compute_lbd(&learnt);
        for v in to_clear {
            self.seen[v] = SEEN_UNDEF;
        }
        (learnt, backjump, lbd)
    }

    /// Recursive learned-clause minimization: removes literals whose reason
    /// antecedents are entirely subsumed by the remaining clause, verified by
    /// a depth-first walk of the implication graph (MiniSat's `litRedundant`
    /// with an explicit stack).
    fn minimize_learnt(&mut self, learnt: &mut Vec<Lit>, to_clear: &mut Vec<usize>) {
        let mut write = 1usize;
        let mut read = 1usize;
        while read < learnt.len() {
            let q = learnt[read];
            read += 1;
            if self.reason[q.var().index()].is_none() || !self.lit_redundant(q, to_clear) {
                learnt[write] = q;
                write += 1;
            } else {
                self.stats.minimized_literals += 1;
            }
        }
        learnt.truncate(write);
    }

    /// Returns `true` if `p` is implied by the remaining learned-clause
    /// literals (marked `SEEN_SOURCE`) and level-0 facts alone.
    fn lit_redundant(&mut self, p: Lit, to_clear: &mut Vec<usize>) -> bool {
        debug_assert_ne!(self.seen[p.var().index()], SEEN_UNDEF);
        let mut stack: Vec<(usize, Lit)> = Vec::new();
        let mut p = p;
        let mut confl = self.reason[p.var().index()].expect("caller checked for a reason");
        let mut i = 1usize; // lits[0] of a reason clause is the implied literal
        loop {
            if i < self.clauses[confl].lits.len() {
                let l = self.clauses[confl].lits[i];
                i += 1;
                let v = l.var().index();
                if self.level[v] == 0
                    || self.seen[v] == SEEN_SOURCE
                    || self.seen[v] == SEEN_REMOVABLE
                {
                    continue;
                }
                if self.reason[v].is_none() || self.seen[v] == SEEN_FAILED {
                    // The whole chain up to here cannot be shown redundant.
                    stack.push((0, p));
                    for &(_, l) in &stack {
                        let v = l.var().index();
                        if self.seen[v] == SEEN_UNDEF {
                            self.seen[v] = SEEN_FAILED;
                            to_clear.push(v);
                        }
                    }
                    return false;
                }
                stack.push((i, p));
                p = l;
                confl = self.reason[v].expect("checked above");
                i = 1;
            } else {
                let v = p.var().index();
                if self.seen[v] == SEEN_UNDEF {
                    self.seen[v] = SEEN_REMOVABLE;
                    to_clear.push(v);
                }
                match stack.pop() {
                    None => return true,
                    Some((next_i, next_p)) => {
                        i = next_i;
                        p = next_p;
                        confl = self.reason[p.var().index()].expect("resumed frame has a reason");
                    }
                }
            }
        }
    }

    fn record_learned(&mut self, learnt: Vec<Lit>, lbd: u32) {
        self.stats.learned_clauses += 1;
        if learnt.len() == 1 {
            self.enqueue(learnt[0], None);
        } else {
            let idx = self.clauses.len();
            let asserting = learnt[0];
            self.clauses.push(Clause {
                lits: learnt,
                learnt: true,
                lbd,
            });
            self.watch_clause(idx);
            self.note_clause_added();
            self.enqueue(asserting, Some(idx));
        }
    }

    /// `true` if clause `ci` is currently the reason of a trail literal —
    /// such clauses are locked and must never be deleted.
    fn is_reason(&self, ci: usize) -> bool {
        let first = self.clauses[ci].lits[0];
        let v = first.var().index();
        self.assign[v] != LBool::Undef && self.reason[v] == Some(ci)
    }

    /// Glucose-style clause-database reduction: deletes the worse half of the
    /// removable learned clauses. Never removes original clauses, binary
    /// clauses, glue clauses (LBD ≤ 2), or clauses that are currently the
    /// reason of a trail literal. Removal order is fully deterministic:
    /// highest LBD first, then longest, then newest (highest index).
    fn reduce_db(&mut self) {
        let mut candidates: Vec<usize> = (0..self.clauses.len())
            .filter(|&ci| {
                let c = &self.clauses[ci];
                c.learnt && c.lits.len() > 2 && c.lbd > 2 && !self.is_reason(ci)
            })
            .collect();
        if candidates.len() < 2 {
            return;
        }
        candidates.sort_by(|&a, &b| {
            let ca = &self.clauses[a];
            let cb = &self.clauses[b];
            (cb.lbd, cb.lits.len(), b).cmp(&(ca.lbd, ca.lits.len(), a))
        });
        let remove_count = candidates.len() / 2;
        let mut remove = vec![false; self.clauses.len()];
        for &ci in &candidates[..remove_count] {
            remove[ci] = true;
        }

        // Compact the clause database and remap every stored clause index.
        let mut remap: Vec<u32> = vec![u32::MAX; self.clauses.len()];
        let mut kept = Vec::with_capacity(self.clauses.len() - remove_count);
        for (ci, clause) in std::mem::take(&mut self.clauses).into_iter().enumerate() {
            if !remove[ci] {
                remap[ci] = kept.len() as u32;
                kept.push(clause);
            }
        }
        self.clauses = kept;
        // Rebuild the long-clause watch lists in clause-index order (the
        // watched literals stay lits[0]/lits[1], preserving the invariant).
        for list in &mut self.watches {
            list.clear();
        }
        for ci in 0..self.clauses.len() {
            if self.clauses[ci].lits.len() > 2 {
                self.watch_clause(ci);
            }
        }
        // Binary clauses are never removed; remap their stored indices.
        for list in &mut self.binary {
            for entry in list {
                entry.1 = remap[entry.1 as usize];
                debug_assert_ne!(entry.1, u32::MAX);
            }
        }
        // Locked clauses were kept, so every reason remaps to a live clause.
        for ci in self.reason.iter_mut().flatten() {
            *ci = remap[*ci] as usize;
        }
        self.stats.reduced_clauses += remove_count as u64;
        #[cfg(debug_assertions)]
        self.check_reason_invariant();
    }

    /// Debug invariant: every trail literal with a clause reason points at a
    /// live clause whose first literal is the trail literal itself. Clause
    /// deletion must preserve this — reduction never drops a reason clause.
    #[cfg(debug_assertions)]
    fn check_reason_invariant(&self) {
        for &lit in &self.trail {
            let v = lit.var().index();
            if let Some(ci) = self.reason[v] {
                assert!(ci < self.clauses.len(), "reason index out of bounds");
                assert_eq!(
                    self.clauses[ci].lits[0], lit,
                    "reason clause must imply its trail literal"
                );
            }
        }
    }

    /// Computes the effective heuristic switches for one solve. With
    /// [`SolverConfig::adaptive`], small variable-heavy formulas (see the
    /// field docs) run with linear-scan decisions and no database reduction;
    /// the selection depends only on the formula, never on timing.
    fn select_heuristics(&mut self) {
        let small = self.config.adaptive
            && self.original_clauses < ADAPTIVE_CLAUSE_CEILING
            && self.original_clauses < 2 * self.num_vars();
        self.use_heap = self.config.heap_decisions && !small;
        self.use_reduction = self.config.clause_db_reduction && !small;
    }

    fn pick_branch_var(&mut self) -> Option<Var> {
        if !self.use_heap {
            // Reference configuration or adaptive small-formula regime:
            // linear activity scan (first variable with strictly greatest
            // activity — identical to the heap's lowest-index tie-break).
            let mut best: Option<usize> = None;
            for v in 0..self.num_vars() {
                if self.assign[v] == LBool::Undef {
                    match best {
                        None => best = Some(v),
                        Some(b) if self.activity[v] > self.activity[b] => best = Some(v),
                        _ => {}
                    }
                }
            }
            return best.map(|v| Var(v as u32));
        }
        while let Some(v) = self.order.pop_max(&self.activity) {
            if self.assign[v] == LBool::Undef {
                return Some(Var(v as u32));
            }
        }
        None
    }

    /// Solves the formula without assumptions.
    pub fn solve(&mut self) -> SolveResult {
        self.solve_with_assumptions(&[])
    }

    /// Solves the formula under the given assumption literals.
    ///
    /// The assumptions are treated as temporary unit clauses: they constrain
    /// this query only and are forgotten afterwards, enabling incremental
    /// use.
    pub fn solve_with_assumptions(&mut self, assumptions: &[Lit]) -> SolveResult {
        self.solve_limited(assumptions, u64::MAX)
            .expect("unlimited solve always terminates with a result")
    }

    /// Solves with a conflict budget; returns `None` if the budget was
    /// exhausted before a result was established.
    pub fn solve_limited(
        &mut self,
        assumptions: &[Lit],
        max_conflicts: u64,
    ) -> Option<SolveResult> {
        self.model = None;
        if !self.ok {
            return Some(SolveResult::Unsat);
        }
        for l in assumptions {
            assert!(
                l.var().index() < self.num_vars(),
                "assumption {l} refers to an unallocated variable"
            );
        }
        self.cancel_until(0);
        self.select_heuristics();
        let mut conflicts_this_call = 0u64;
        let mut restart_count = 0u64;
        let mut conflicts_until_restart = 64 * luby(restart_count + 1);

        loop {
            let conflict = self.propagate();
            match conflict {
                Some(ci) => {
                    self.stats.conflicts += 1;
                    conflicts_this_call += 1;
                    if self.decision_level() == 0 {
                        self.ok = false;
                        return Some(SolveResult::Unsat);
                    }
                    let (learnt, backjump, lbd) = self.analyze(ci);
                    self.cancel_until(backjump);
                    self.record_learned(learnt, lbd);
                    self.decay_activities();
                    if self.use_reduction {
                        self.conflicts_since_reduce += 1;
                        if self.conflicts_since_reduce >= self.reduce_threshold {
                            self.reduce_db();
                            self.conflicts_since_reduce = 0;
                            self.reduce_threshold += self.config.reduce_increment;
                        }
                    }
                    if conflicts_this_call >= max_conflicts {
                        self.cancel_until(0);
                        return None;
                    }
                    if conflicts_this_call >= conflicts_until_restart {
                        restart_count += 1;
                        self.stats.restarts += 1;
                        conflicts_until_restart =
                            conflicts_this_call + 64 * luby(restart_count + 1);
                        self.cancel_until(0);
                    }
                }
                None => {
                    // Re-establish assumptions one decision level at a time.
                    if self.decision_level() < assumptions.len() {
                        let p = assumptions[self.decision_level()];
                        match self.value(p) {
                            LBool::True => {
                                self.new_decision_level();
                            }
                            LBool::False => {
                                self.cancel_until(0);
                                return Some(SolveResult::Unsat);
                            }
                            LBool::Undef => {
                                self.new_decision_level();
                                self.enqueue(p, None);
                            }
                        }
                        continue;
                    }
                    match self.pick_branch_var() {
                        None => {
                            // Every variable is assigned: extract the model.
                            let values = self
                                .assign
                                .iter()
                                .map(|&a| a == LBool::True)
                                .collect::<Vec<_>>();
                            self.model = Some(Model { values });
                            self.cancel_until(0);
                            return Some(SolveResult::Sat);
                        }
                        Some(v) => {
                            self.stats.decisions += 1;
                            self.new_decision_level();
                            let lit = Lit::with_polarity(v, self.phase[v.index()]);
                            self.enqueue(lit, None);
                        }
                    }
                }
            }
        }
    }

    /// Returns the model of the most recent successful [`Solver::solve`]
    /// call, or `None` if the last query was unsatisfiable or interrupted.
    pub fn model(&self) -> Option<&Model> {
        self.model.as_ref()
    }
}

/// The Luby restart sequence: 1, 1, 2, 1, 1, 2, 4, ...
fn luby(mut i: u64) -> u64 {
    // Find the finite subsequence containing index i and its size.
    let mut size = 1u64;
    let mut seq = 0u64;
    while size < i + 1 {
        seq += 1;
        size = 2 * size + 1;
    }
    while size - 1 != i {
        size = (size - 1) / 2;
        seq -= 1;
        i %= size;
    }
    1u64 << seq
}

#[cfg(test)]
mod tests {
    #![allow(clippy::needless_range_loop)]

    use super::*;

    fn lit(s: &mut Solver, idx: usize, positive: bool) -> Lit {
        while s.num_vars() <= idx {
            s.new_var();
        }
        Lit::with_polarity(Var::from_index(idx), positive)
    }

    /// A configuration that reduces the clause database after every conflict
    /// — worthless as a heuristic, priceless for stress-testing the locked-
    /// clause protection and index remapping.
    fn aggressive_reduction() -> SolverConfig {
        SolverConfig {
            reduce_base: 1,
            reduce_increment: 0,
            ..SolverConfig::default()
        }
    }

    fn pigeonhole_solver(config: SolverConfig, holes: usize) -> Solver {
        let mut s = Solver::with_config(config);
        let p: Vec<Vec<Lit>> = (0..holes + 1)
            .map(|_| (0..holes).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..holes {
            for i1 in 0..holes + 1 {
                for i2 in (i1 + 1)..holes + 1 {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        s
    }

    #[test]
    fn luby_sequence_prefix() {
        let prefix: Vec<u64> = (0..15).map(luby).collect();
        assert_eq!(prefix, vec![1, 1, 2, 1, 1, 2, 4, 1, 1, 2, 1, 1, 2, 4, 8]);
    }

    #[test]
    fn empty_formula_is_sat() {
        let mut s = Solver::new();
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().is_some());
    }

    #[test]
    fn single_unit_clause() {
        let mut s = Solver::new();
        let a = s.new_var();
        s.add_clause([Lit::pos(a)]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap().value(a));
    }

    #[test]
    fn contradictory_units_are_unsat() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a)]));
        assert!(!s.add_clause([Lit::neg(a)]));
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.model().is_none());
    }

    #[test]
    fn empty_clause_is_unsat() {
        let mut s = Solver::new();
        assert!(!s.add_clause([]));
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn tautological_clause_is_ignored() {
        let mut s = Solver::new();
        let a = s.new_var();
        assert!(s.add_clause([Lit::pos(a), Lit::neg(a)]));
        assert_eq!(s.num_clauses(), 0);
        assert_eq!(s.solve(), SolveResult::Sat);
    }

    #[test]
    fn implication_chain_propagates() {
        let mut s = Solver::new();
        let vars: Vec<_> = (0..20).map(|_| s.new_var()).collect();
        s.add_clause([Lit::pos(vars[0])]);
        for w in vars.windows(2) {
            s.add_clause([Lit::neg(w[0]), Lit::pos(w[1])]);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let m = s.model().unwrap().clone();
        assert!(vars.iter().all(|&v| m.value(v)));
    }

    #[test]
    fn unsat_triangle() {
        // (a∨b) (¬a∨b) (a∨¬b) (¬a∨¬b) is unsatisfiable.
        let mut s = Solver::new();
        let a = lit(&mut s, 0, true);
        let b = lit(&mut s, 1, true);
        s.add_clause([a, b]);
        s.add_clause([!a, b]);
        s.add_clause([a, !b]);
        s.add_clause([!a, !b]);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn duplicate_assumptions_are_harmless() {
        // Each repeated already-true assumption opens an empty decision
        // level, so variable levels can exceed the variable count; the LBD
        // stamp table must follow (regression: index-out-of-bounds panic).
        let mut s = Solver::new();
        let a = Lit::pos(s.new_var());
        let b = Lit::pos(s.new_var());
        let c = Lit::pos(s.new_var());
        s.add_clause([!b, c]);
        s.add_clause([!b, !c]);
        assert_eq!(
            s.solve_with_assumptions(&[a, a, a, a, a, a, b]),
            SolveResult::Unsat
        );
        assert_eq!(s.solve_with_assumptions(&[a, a, a]), SolveResult::Sat);
    }

    #[test]
    fn assumptions_are_temporary() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        assert_eq!(
            s.solve_with_assumptions(&[Lit::neg(a), Lit::neg(b)]),
            SolveResult::Unsat
        );
        // Without the assumptions the formula is satisfiable again.
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(s.solve_with_assumptions(&[Lit::neg(a)]), SolveResult::Sat);
        assert!(s.model().unwrap().value(b));
    }

    #[test]
    fn pigeonhole_three_pigeons_two_holes_unsat() {
        let mut s = pigeonhole_solver(SolverConfig::default(), 2);
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn pigeonhole_five_pigeons_five_holes_sat() {
        let mut s = Solver::new();
        let n = 5;
        let p: Vec<Vec<Lit>> = (0..n)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..n {
            for i1 in 0..n {
                for i2 in (i1 + 1)..n {
                    s.add_clause([!p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        // Every pigeon occupies at least one hole in the model.
        let m = s.model().unwrap().clone();
        for row in &p {
            assert!(row.iter().any(|&l| m.lit_value(l)));
        }
    }

    #[test]
    fn model_satisfies_all_clauses_random() {
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(42);
        for round in 0..30usize {
            let num_vars = 8 + round % 5;
            let num_clauses = 3 * num_vars;
            let mut s = Solver::new();
            let vars: Vec<_> = (0..num_vars).map(|_| s.new_var()).collect();
            let mut clauses = Vec::new();
            for _ in 0..num_clauses {
                let len = rng.gen_range(1..=3);
                let clause: Vec<Lit> = (0..len)
                    .map(|_| Lit::with_polarity(vars[rng.gen_range(0..num_vars)], rng.gen()))
                    .collect();
                clauses.push(clause.clone());
                s.add_clause(clause);
            }
            // Brute-force reference.
            let brute_sat = (0..(1u64 << num_vars)).any(|mask| {
                clauses.iter().all(|c| {
                    c.iter().any(|l| {
                        let val = (mask >> l.var().index()) & 1 == 1;
                        val == l.is_positive()
                    })
                })
            });
            let result = s.solve();
            assert_eq!(result == SolveResult::Sat, brute_sat, "round {round}");
            if result == SolveResult::Sat {
                let m = s.model().unwrap();
                for c in &clauses {
                    assert!(c.iter().any(|&l| m.lit_value(l)));
                }
            }
        }
    }

    #[test]
    fn solve_limited_respects_budget() {
        // A hard pigeonhole instance with a tiny budget returns None.
        let mut s = pigeonhole_solver(SolverConfig::default(), 8);
        assert_eq!(s.solve_limited(&[], 5), None);
        // The solver remains usable afterwards.
        assert_eq!(s.solve_limited(&[], u64::MAX), Some(SolveResult::Unsat));
    }

    #[test]
    fn stats_are_collected() {
        let mut s = Solver::new();
        let a = s.new_var();
        let b = s.new_var();
        s.add_clause([Lit::pos(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(a), Lit::pos(b)]);
        s.add_clause([Lit::neg(b), Lit::pos(a)]);
        s.solve();
        let stats = s.stats();
        assert!(stats.decisions + stats.propagations > 0);
        assert!(stats.peak_clause_db >= s.num_clauses() as u64);
        assert!(!stats.to_string().is_empty());
    }

    #[test]
    fn heap_decisions_match_linear_scan_exactly() {
        // With reduction and minimization disabled, the heap-based solver
        // must reproduce the reference solver's models bit for bit: the heap
        // maximum (highest activity, lowest index on ties) is exactly what
        // the linear scan picks.
        let heap_only = SolverConfig {
            heap_decisions: true,
            clause_db_reduction: false,
            minimize_learned: false,
            ..SolverConfig::default()
        };
        use rand::prelude::*;
        let mut rng = StdRng::seed_from_u64(7);
        for round in 0..25usize {
            let num_vars = 8 + round % 6;
            let mut tuned = Solver::with_config(heap_only);
            let mut reference = Solver::with_config(SolverConfig::reference());
            let vars_t: Vec<_> = (0..num_vars).map(|_| tuned.new_var()).collect();
            let vars_r: Vec<_> = (0..num_vars).map(|_| reference.new_var()).collect();
            for _ in 0..3 * num_vars {
                let len = rng.gen_range(1..=3);
                let picks: Vec<(usize, bool)> = (0..len)
                    .map(|_| (rng.gen_range(0..num_vars), rng.gen()))
                    .collect();
                tuned.add_clause(
                    picks
                        .iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars_t[v], pos)),
                );
                reference.add_clause(
                    picks
                        .iter()
                        .map(|&(v, pos)| Lit::with_polarity(vars_r[v], pos)),
                );
            }
            let rt = tuned.solve();
            let rr = reference.solve();
            assert_eq!(rt, rr, "round {round}");
            assert_eq!(tuned.model(), reference.model(), "round {round}");
            assert_eq!(
                tuned.stats().decisions,
                reference.stats().decisions,
                "round {round}: identical decision sequences"
            );
        }
    }

    #[test]
    fn aggressive_reduction_preserves_verdicts() {
        // Reduce after every conflict: UNSAT proofs still go through because
        // locked (reason) clauses, binaries and glue clauses survive.
        let mut aggressive = pigeonhole_solver(aggressive_reduction(), 6);
        let mut reference = pigeonhole_solver(SolverConfig::reference(), 6);
        assert_eq!(aggressive.solve(), SolveResult::Unsat);
        assert_eq!(reference.solve(), SolveResult::Unsat);
        assert!(
            aggressive.stats().reduced_clauses > 0,
            "the aggressive config must actually reduce"
        );
        assert_eq!(reference.stats().reduced_clauses, 0);
    }

    #[test]
    fn reduction_never_drops_reason_clauses() {
        // Solved in debug mode, reduce_db re-checks after every reduction
        // that each trail literal's reason clause survived compaction with
        // its implied literal first (`check_reason_invariant`). The
        // per-conflict reduction schedule makes reductions happen while the
        // trail is deep and many clauses are locked.
        let mut s = pigeonhole_solver(aggressive_reduction(), 7);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().reduced_clauses > 0);
        // The peak tracker covers the final database.
        assert!(s.stats().peak_clause_db >= s.num_clauses() as u64);
    }

    #[test]
    fn reduction_keeps_incremental_sessions_reusable() {
        // Assumption-based reuse across queries with constant reduction.
        let mut s = Solver::with_config(aggressive_reduction());
        let n = 6;
        let p: Vec<Vec<Lit>> = (0..n + 1)
            .map(|_| (0..n).map(|_| Lit::pos(s.new_var())).collect())
            .collect();
        let sel = Lit::pos(s.new_var());
        for row in &p {
            s.add_clause(row.clone());
        }
        for j in 0..n {
            for i1 in 0..n + 1 {
                for i2 in (i1 + 1)..n + 1 {
                    // Guarded pairwise exclusions: active only under `sel`.
                    s.add_clause([!sel, !p[i1][j], !p[i2][j]]);
                }
            }
        }
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
        // Without the guard the formula relaxes back to satisfiable.
        assert_eq!(s.solve(), SolveResult::Sat);
        // And the guarded query still proves UNSAT on the warm database.
        assert_eq!(s.solve_with_assumptions(&[sel]), SolveResult::Unsat);
    }

    #[test]
    fn minimization_shortens_learned_clauses() {
        let mut with_min = pigeonhole_solver(SolverConfig::default(), 6);
        assert_eq!(with_min.solve(), SolveResult::Unsat);
        assert!(
            with_min.stats().minimized_literals > 0,
            "pigeonhole conflicts have redundant literals to strip"
        );
    }

    #[test]
    fn propagations_per_decision_is_well_defined() {
        let zero = SolverStats::default();
        assert_eq!(zero.propagations_per_decision(), 0.0);
        let some = SolverStats {
            decisions: 4,
            propagations: 10,
            ..SolverStats::default()
        };
        assert!((some.propagations_per_decision() - 2.5).abs() < 1e-12);
    }

    /// A small formula with enough padding variables to sit in the adaptive
    /// small/variable-heavy regime while still producing real conflicts: a
    /// pigeonhole core plus unconstrained padding vars.
    fn var_heavy_pigeonhole(config: SolverConfig, holes: usize) -> Solver {
        let mut s = pigeonhole_solver(config, holes);
        let clauses = s.num_clauses();
        while 2 * s.num_vars() <= clauses {
            s.new_var();
        }
        s
    }

    #[test]
    fn adaptive_config_skips_reduction_on_small_var_heavy_formulas() {
        // Same formula, same per-conflict reduction schedule; the adaptive
        // default recognizes the small variable-heavy instance and skips the
        // database reduction, the non-adaptive config reduces as configured.
        let mut adaptive = var_heavy_pigeonhole(aggressive_reduction(), 6);
        let mut eager = var_heavy_pigeonhole(
            SolverConfig {
                adaptive: false,
                ..aggressive_reduction()
            },
            6,
        );
        assert_eq!(adaptive.solve(), SolveResult::Unsat);
        assert_eq!(eager.solve(), SolveResult::Unsat);
        assert_eq!(adaptive.stats().reduced_clauses, 0);
        assert!(eager.stats().reduced_clauses > 0);
    }

    #[test]
    fn adaptive_config_keeps_heuristics_on_constraint_dense_formulas() {
        // The bare pigeonhole instance is constraint-dense (more clauses
        // than twice the variables), so adaptation leaves the configured
        // heuristics alone even under the clause ceiling.
        let mut s = pigeonhole_solver(aggressive_reduction(), 6);
        assert_eq!(s.solve(), SolveResult::Unsat);
        assert!(s.stats().reduced_clauses > 0);
    }

    #[test]
    fn adaptive_and_eager_configs_agree_on_verdicts() {
        for holes in 2..6 {
            let mut adaptive = var_heavy_pigeonhole(SolverConfig::default(), holes);
            let mut eager = var_heavy_pigeonhole(
                SolverConfig {
                    adaptive: false,
                    ..SolverConfig::default()
                },
                holes,
            );
            assert_eq!(adaptive.solve(), eager.solve(), "holes={holes}");
        }
    }
}
