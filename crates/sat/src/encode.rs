//! Higher-level constraint encodings on top of the CDCL solver.
//!
//! The synthesis encodings of the paper need three constraint families
//! beyond plain clauses: Tseitin gate definitions (AND/OR/XOR), GF(2) parity
//! constraints, and cardinality bounds (at-most-k), optionally guarded by an
//! activation literal so they only apply on selected protocol branches.

use crate::{Lit, SatBackend, Solver};

/// Encoder that adds structured constraints to any [`SatBackend`]
/// (defaulting to the in-tree CDCL [`Solver`]).
///
/// The encoder borrows the backend mutably; all auxiliary variables it
/// introduces live in the same variable space as the caller's variables.
///
/// # Examples
///
/// ```
/// use dftsp_sat::{Encoder, Lit, SolveResult, Solver};
///
/// let mut solver = Solver::new();
/// let bits: Vec<Lit> = (0..4).map(|_| Lit::pos(solver.new_var())).collect();
/// {
///     let mut enc = Encoder::new(&mut solver);
///     enc.at_most_k(&bits, 1);
///     enc.add_parity(&bits, true); // odd number of bits set
/// }
/// assert_eq!(solver.solve(), SolveResult::Sat);
/// let model = solver.model().expect("sat");
/// let ones = bits.iter().filter(|&&b| model.lit_value(b)).count();
/// assert_eq!(ones, 1);
/// ```
#[derive(Debug)]
pub struct Encoder<'a, B: SatBackend + ?Sized = Solver> {
    solver: &'a mut B,
    true_lit: Option<Lit>,
}

impl<'a, B: SatBackend + ?Sized> Encoder<'a, B> {
    /// Creates an encoder targeting `solver`.
    pub fn new(solver: &'a mut B) -> Self {
        Encoder {
            solver,
            true_lit: None,
        }
    }

    /// Returns the underlying solver.
    pub fn solver(&mut self) -> &mut B {
        self.solver
    }

    /// Allocates a fresh variable and returns its positive literal.
    pub fn new_lit(&mut self) -> Lit {
        Lit::pos(self.solver.new_var())
    }

    /// Returns a literal that is constrained to be true.
    pub fn true_lit(&mut self) -> Lit {
        if let Some(t) = self.true_lit {
            return t;
        }
        let t = self.new_lit();
        self.solver.add_clause(&[t]);
        self.true_lit = Some(t);
        t
    }

    /// Returns a literal that is constrained to be false.
    pub fn false_lit(&mut self) -> Lit {
        !self.true_lit()
    }

    /// Adds the implication `a → b`.
    pub fn implies(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause(&[!a, b]);
    }

    /// Adds the equivalence `a ↔ b`.
    pub fn equivalent(&mut self, a: Lit, b: Lit) {
        self.solver.add_clause(&[!a, b]);
        self.solver.add_clause(&[a, !b]);
    }

    /// Returns a literal equivalent to the conjunction of `lits`
    /// (Tseitin encoding).
    ///
    /// The conjunction of an empty set is true.
    pub fn and(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.true_lit(),
            [single] => *single,
            _ => {
                let out = self.new_lit();
                // out → each lit
                for &l in lits {
                    self.solver.add_clause(&[!out, l]);
                }
                // all lits → out
                let mut clause: Vec<Lit> = lits.iter().map(|&l| !l).collect();
                clause.push(out);
                self.solver.add_clause(&clause);
                out
            }
        }
    }

    /// Returns a literal equivalent to the disjunction of `lits`
    /// (Tseitin encoding).
    ///
    /// The disjunction of an empty set is false.
    pub fn or(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.false_lit(),
            [single] => *single,
            _ => {
                let out = self.new_lit();
                // each lit → out
                for &l in lits {
                    self.solver.add_clause(&[!l, out]);
                }
                // out → some lit
                let mut clause: Vec<Lit> = lits.to_vec();
                clause.push(!out);
                self.solver.add_clause(&clause);
                out
            }
        }
    }

    /// Returns a literal equivalent to `a ⊕ b`.
    pub fn xor(&mut self, a: Lit, b: Lit) -> Lit {
        let out = self.new_lit();
        // out ↔ a ⊕ b
        self.solver.add_clause(&[!out, a, b]);
        self.solver.add_clause(&[!out, !a, !b]);
        self.solver.add_clause(&[out, !a, b]);
        self.solver.add_clause(&[out, a, !b]);
        out
    }

    /// Returns a literal equivalent to the parity (XOR) of `lits`.
    ///
    /// The parity of an empty set is false.
    pub fn xor_many(&mut self, lits: &[Lit]) -> Lit {
        match lits {
            [] => self.false_lit(),
            [single] => *single,
            _ => {
                let mut acc = lits[0];
                for &l in &lits[1..] {
                    acc = self.xor(acc, l);
                }
                acc
            }
        }
    }

    /// Constrains the XOR of `lits` to equal `parity`
    /// (`true` = odd number of satisfied literals).
    pub fn add_parity(&mut self, lits: &[Lit], parity: bool) {
        match lits {
            [] => {
                if parity {
                    // XOR of nothing is 0; requiring 1 is a contradiction.
                    let f = self.false_lit();
                    self.solver.add_clause(&[f]);
                }
            }
            [single] => {
                let l = if parity { *single } else { !*single };
                self.solver.add_clause(&[l]);
            }
            _ => {
                let folded = self.xor_many(lits);
                let l = if parity { folded } else { !folded };
                self.solver.add_clause(&[l]);
            }
        }
    }

    /// Constrains at most one of `lits` to be true (pairwise encoding).
    pub fn at_most_one(&mut self, lits: &[Lit]) {
        for i in 0..lits.len() {
            for j in (i + 1)..lits.len() {
                self.solver.add_clause(&[!lits[i], !lits[j]]);
            }
        }
    }

    /// Constrains exactly one of `lits` to be true.
    ///
    /// # Panics
    ///
    /// Panics if `lits` is empty (no literal can then be true).
    pub fn exactly_one(&mut self, lits: &[Lit]) {
        assert!(
            !lits.is_empty(),
            "exactly_one of an empty set is unsatisfiable"
        );
        self.solver.add_clause(lits);
        self.at_most_one(lits);
    }

    /// Constrains at most `k` of `lits` to be true, using the
    /// sequential-counter encoding of Sinz.
    pub fn at_most_k(&mut self, lits: &[Lit], k: usize) {
        self.at_most_k_guarded(None, lits, k);
    }

    /// Constrains at most `k` of `lits` to be true *when `guard` is true*.
    ///
    /// With `guard = None` the constraint is unconditional. The guarded form
    /// is used for branch-dependent constraints (e.g. a correction-weight
    /// bound that only applies on the branch selected by a syndrome).
    pub fn at_most_k_guarded(&mut self, guard: Option<Lit>, lits: &[Lit], k: usize) {
        let n = lits.len();
        if n <= k {
            return;
        }
        let relax = guard.map(|g| !g);
        if k == 0 {
            for &l in lits {
                let mut clause = vec![!l];
                if let Some(r) = relax {
                    clause.push(r);
                }
                self.solver.add_clause(&clause);
            }
            return;
        }
        // s[i][j] ⇔ at least j+1 of the first i+1 literals are true.
        let mut s = vec![vec![Lit(0); k]; n];
        for (i, row) in s.iter_mut().enumerate() {
            for cell in row.iter_mut() {
                let _ = i;
                *cell = Lit::pos(self.solver.new_var());
            }
        }
        let add = |solver: &mut B, mut clause: Vec<Lit>| {
            if let Some(r) = relax {
                clause.push(r);
            }
            solver.add_clause(&clause);
        };
        // Base cases.
        add(&mut *self.solver, vec![!lits[0], s[0][0]]);
        for cell in s[0].iter().skip(1) {
            add(&mut *self.solver, vec![!*cell]);
        }
        for i in 1..n {
            // lits[i] → s[i][0]
            add(&mut *self.solver, vec![!lits[i], s[i][0]]);
            // s[i-1][0] → s[i][0]
            add(&mut *self.solver, vec![!s[i - 1][0], s[i][0]]);
            for j in 1..k {
                // lits[i] ∧ s[i-1][j-1] → s[i][j]
                add(&mut *self.solver, vec![!lits[i], !s[i - 1][j - 1], s[i][j]]);
                // s[i-1][j] → s[i][j]
                add(&mut *self.solver, vec![!s[i - 1][j], s[i][j]]);
            }
            // lits[i] ∧ s[i-1][k-1] → ⊥
            add(&mut *self.solver, vec![!lits[i], !s[i - 1][k - 1]]);
        }
    }

    /// Encodes a one-way sequential counter over `lits` and returns `width`
    /// output literals: `out[j]` is implied true whenever at least `j + 1`
    /// of `lits` are true.
    ///
    /// Assuming `!out[j]` in a query therefore enforces "at most `j` true"
    /// for that query only. This is the retractable-bound primitive the
    /// incremental optimization ladders use: the counter is encoded once,
    /// and every tightened (or relaxed) bound of the ladder is a single
    /// assumption literal — no re-encoding, no discarded learned clauses.
    ///
    /// # Panics
    ///
    /// Panics if `width` is zero.
    pub fn cardinality_ladder(&mut self, lits: &[Lit], width: usize) -> Vec<Lit> {
        assert!(width > 0, "a zero-width counter has no outputs to assume");
        let n = lits.len();
        if n == 0 {
            // No literal can ever be true: the outputs are hard-false.
            let f = self.false_lit();
            return vec![f; width];
        }
        // prev[j] ⇐ at least j+1 of the literals seen so far are true.
        let mut prev: Vec<Lit> = (0..width).map(|_| self.new_lit()).collect();
        self.implies(lits[0], prev[0]);
        for &cell in &prev[1..] {
            // Two or more of the first one literal is impossible.
            self.solver.add_clause(&[!cell]);
        }
        for &lit in &lits[1..] {
            let row: Vec<Lit> = (0..width).map(|_| self.new_lit()).collect();
            self.implies(lit, row[0]);
            self.implies(prev[0], row[0]);
            for j in 1..width {
                // lit ∧ prev[j-1] → row[j]
                self.solver.add_clause(&[!lit, !prev[j - 1], row[j]]);
                self.implies(prev[j], row[j]);
            }
            prev = row;
        }
        prev
    }

    /// Constrains at most `k` of `lits` to be true *behind a fresh guard
    /// literal*, and returns the guard.
    ///
    /// The constraint only applies to queries that assume the returned guard;
    /// releasing the guard ([`crate::SatBackend::release_guard`]) retracts it
    /// permanently. This is the retractable form the incremental optimization
    /// ladders use to tighten a cardinality bound on a live solver without
    /// discarding learned clauses.
    pub fn at_most_k_retractable(&mut self, lits: &[Lit], k: usize) -> Lit {
        let guard = self.solver.new_guard();
        self.at_most_k_guarded(Some(guard), lits, k);
        guard
    }

    /// Constrains at least `k` of `lits` to be true.
    pub fn at_least_k(&mut self, lits: &[Lit], k: usize) {
        if k == 0 {
            return;
        }
        if k == 1 {
            self.solver.add_clause(lits);
            return;
        }
        // At least k of lits ⇔ at most (n - k) of the negations.
        let negated: Vec<Lit> = lits.iter().map(|&l| !l).collect();
        let bound = lits.len().saturating_sub(k);
        if lits.len() < k {
            // Impossible to satisfy.
            let f = self.false_lit();
            self.solver.add_clause(&[f]);
            return;
        }
        self.at_most_k(&negated, bound);
    }

    /// Constrains exactly `k` of `lits` to be true.
    pub fn exactly_k(&mut self, lits: &[Lit], k: usize) {
        self.at_most_k(lits, k);
        self.at_least_k(lits, k);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::{SolveResult, Solver};

    fn fresh(n: usize) -> (Solver, Vec<Lit>) {
        let mut s = Solver::new();
        let lits = (0..n).map(|_| Lit::pos(s.new_var())).collect();
        (s, lits)
    }

    fn count_true(s: &Solver, lits: &[Lit]) -> usize {
        let m = s.model().expect("expected sat");
        lits.iter().filter(|&&l| m.lit_value(l)).count()
    }

    #[test]
    fn and_gate_semantics() {
        let (mut s, lits) = fresh(3);
        let out = {
            let mut e = Encoder::new(&mut s);
            e.and(&lits)
        };
        // Force the output true: all inputs must be true.
        s.add_clause([out]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(count_true(&s, &lits), 3);
        // Forcing output true and one input false is unsatisfiable.
        assert_eq!(s.solve_with_assumptions(&[!lits[1]]), SolveResult::Unsat);
    }

    #[test]
    fn or_gate_semantics() {
        let (mut s, lits) = fresh(3);
        let out = {
            let mut e = Encoder::new(&mut s);
            e.or(&lits)
        };
        s.add_clause([!out]);
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(count_true(&s, &lits), 0);
        assert_eq!(s.solve_with_assumptions(&[lits[2]]), SolveResult::Unsat);
    }

    #[test]
    fn xor_gate_semantics() {
        let (mut s, lits) = fresh(2);
        let out = {
            let mut e = Encoder::new(&mut s);
            e.xor(lits[0], lits[1])
        };
        for (a, b) in [(false, false), (false, true), (true, false), (true, true)] {
            let assumptions = [
                Lit::with_polarity(lits[0].var(), a),
                Lit::with_polarity(lits[1].var(), b),
            ];
            assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
            assert_eq!(s.model().unwrap().lit_value(out), a ^ b);
        }
    }

    #[test]
    fn parity_constraint_enumeration() {
        for parity in [false, true] {
            let (mut s, lits) = fresh(4);
            {
                let mut e = Encoder::new(&mut s);
                e.add_parity(&lits, parity);
            }
            // Count satisfying assignments over the original 4 variables by
            // enumerating with assumptions: each of the 16 assignments should
            // be satisfiable iff its parity matches.
            for mask in 0..16u32 {
                let assumptions: Vec<Lit> = (0..4)
                    .map(|i| Lit::with_polarity(lits[i].var(), (mask >> i) & 1 == 1))
                    .collect();
                let expected = (mask.count_ones() % 2 == 1) == parity;
                let result = s.solve_with_assumptions(&assumptions) == SolveResult::Sat;
                assert_eq!(result, expected, "mask={mask} parity={parity}");
            }
        }
    }

    #[test]
    fn empty_parity_cases() {
        let mut s = Solver::new();
        {
            let mut e = Encoder::new(&mut s);
            e.add_parity(&[], false);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        let mut s = Solver::new();
        {
            let mut e = Encoder::new(&mut s);
            e.add_parity(&[], true);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn at_most_one_and_exactly_one() {
        let (mut s, lits) = fresh(5);
        {
            let mut e = Encoder::new(&mut s);
            e.exactly_one(&lits);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(count_true(&s, &lits), 1);
        // Two literals forced true violates the constraint.
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], lits[4]]),
            SolveResult::Unsat
        );
    }

    #[test]
    fn at_most_k_bounds_are_tight() {
        for k in 0..4 {
            let (mut s, lits) = fresh(5);
            {
                let mut e = Encoder::new(&mut s);
                e.at_most_k(&lits, k);
            }
            // Forcing k literals true is fine; forcing k+1 is not.
            let forced: Vec<Lit> = lits.iter().copied().take(k).collect();
            assert_eq!(s.solve_with_assumptions(&forced), SolveResult::Sat, "k={k}");
            let forced: Vec<Lit> = lits.iter().copied().take(k + 1).collect();
            assert_eq!(
                s.solve_with_assumptions(&forced),
                SolveResult::Unsat,
                "k={k}"
            );
        }
    }

    #[test]
    fn at_least_and_exactly_k() {
        let (mut s, lits) = fresh(6);
        {
            let mut e = Encoder::new(&mut s);
            e.exactly_k(&lits, 3);
        }
        assert_eq!(s.solve(), SolveResult::Sat);
        assert_eq!(count_true(&s, &lits), 3);
        // Forcing four true is unsat, forcing four false is unsat.
        let four_true: Vec<Lit> = lits.iter().copied().take(4).collect();
        assert_eq!(s.solve_with_assumptions(&four_true), SolveResult::Unsat);
        let four_false: Vec<Lit> = lits.iter().map(|&l| !l).take(4).collect();
        assert_eq!(s.solve_with_assumptions(&four_false), SolveResult::Unsat);
    }

    #[test]
    fn at_least_k_impossible_bound() {
        let (mut s, lits) = fresh(2);
        {
            let mut e = Encoder::new(&mut s);
            e.at_least_k(&lits, 3);
        }
        assert_eq!(s.solve(), SolveResult::Unsat);
    }

    #[test]
    fn guarded_cardinality_only_applies_when_guard_true() {
        let (mut s, lits) = fresh(4);
        let guard = Lit::pos(s.new_var());
        {
            let mut e = Encoder::new(&mut s);
            e.at_most_k_guarded(Some(guard), &lits, 1);
        }
        // With the guard false, all four literals may be true.
        let mut assumptions = vec![!guard];
        assumptions.extend(lits.iter().copied());
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
        // With the guard true, at most one may be true.
        let mut assumptions = vec![guard];
        assumptions.extend(lits.iter().copied().take(2));
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Unsat);
        let assumptions = vec![guard, lits[0]];
        assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
    }

    #[test]
    fn cardinality_ladder_bounds_via_assumptions() {
        let (mut s, lits) = fresh(5);
        let outputs = {
            let mut e = Encoder::new(&mut s);
            e.cardinality_ladder(&lits, 4)
        };
        for (k, &output) in outputs.iter().enumerate() {
            // Forcing k+1 literals true violates the assumed at-most-k bound;
            // forcing k is fine.
            let mut assumptions = vec![!output];
            assumptions.extend(lits.iter().copied().take(k + 1));
            assert_eq!(
                s.solve_with_assumptions(&assumptions),
                SolveResult::Unsat,
                "k={k}"
            );
            let mut assumptions = vec![!output];
            assumptions.extend(lits.iter().copied().take(k));
            assert_eq!(
                s.solve_with_assumptions(&assumptions),
                SolveResult::Sat,
                "k={k}"
            );
        }
        // Without an assumed output the count is unconstrained.
        assert_eq!(s.solve_with_assumptions(&lits), SolveResult::Sat);
    }

    #[test]
    fn cardinality_ladder_over_no_literals_is_hard_false() {
        let mut s = Solver::new();
        let outputs = {
            let mut e = Encoder::new(&mut s);
            e.cardinality_ladder(&[], 3)
        };
        assert_eq!(outputs.len(), 3);
        assert_eq!(s.solve(), SolveResult::Sat);
        for out in outputs {
            assert!(!s.model().unwrap().lit_value(out));
        }
    }

    #[test]
    fn guarded_zero_bound() {
        let (mut s, lits) = fresh(3);
        let guard = Lit::pos(s.new_var());
        {
            let mut e = Encoder::new(&mut s);
            e.at_most_k_guarded(Some(guard), &lits, 0);
        }
        assert_eq!(
            s.solve_with_assumptions(&[guard, lits[1]]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_with_assumptions(&[!guard, lits[1]]),
            SolveResult::Sat
        );
    }

    #[test]
    fn xor_many_matches_reference() {
        let (mut s, lits) = fresh(5);
        let out = {
            let mut e = Encoder::new(&mut s);
            e.xor_many(&lits)
        };
        for mask in 0..32u32 {
            let assumptions: Vec<Lit> = (0..5)
                .map(|i| Lit::with_polarity(lits[i].var(), (mask >> i) & 1 == 1))
                .collect();
            assert_eq!(s.solve_with_assumptions(&assumptions), SolveResult::Sat);
            assert_eq!(
                s.model().unwrap().lit_value(out),
                mask.count_ones() % 2 == 1
            );
        }
    }

    #[test]
    fn true_and_false_lits() {
        let mut s = Solver::new();
        let (t, f) = {
            let mut e = Encoder::new(&mut s);
            (e.true_lit(), e.false_lit())
        };
        assert_eq!(s.solve(), SolveResult::Sat);
        assert!(s.model().unwrap().lit_value(t));
        assert!(!s.model().unwrap().lit_value(f));
    }

    #[test]
    fn implies_and_equivalent() {
        let (mut s, lits) = fresh(2);
        {
            let mut e = Encoder::new(&mut s);
            e.implies(lits[0], lits[1]);
        }
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], !lits[1]]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_with_assumptions(&[!lits[0], !lits[1]]),
            SolveResult::Sat
        );
        let (mut s, lits) = fresh(2);
        {
            let mut e = Encoder::new(&mut s);
            e.equivalent(lits[0], lits[1]);
        }
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], !lits[1]]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_with_assumptions(&[!lits[0], lits[1]]),
            SolveResult::Unsat
        );
        assert_eq!(
            s.solve_with_assumptions(&[lits[0], lits[1]]),
            SolveResult::Sat
        );
    }
}
